(** Plain-text serialization of traces, so a marked program's event stream
    can be generated once and replayed by external tooling (or inspected
    by hand). The format is line-oriented:

    {v
    hscd-trace 1
    words <total_words>
    array <name> <base> <dim> [<dim> ...]
    golden <index> <value>            (only non-zero words)
    epoch serial | epoch parallel <lo> <hi>
    task <iter>
    C <cycles>
    R <addr> <mark> <value> <array>   (mark: N|U|B|T<d>)
    W <addr> <mark> <value> <array>   (mark: N|B)
    L / U                             (lock / unlock)
    v} *)

module Event = Hscd_arch.Event
module Shape = Hscd_lang.Shape
module Err = Hscd_util.Hscd_error

let mark_str = function
  | Event.Unmarked -> "U"
  | Event.Normal_read -> "N"
  | Event.Bypass_read -> "B"
  | Event.Time_read d -> "T" ^ string_of_int d

let mark_of_str s =
  match s with
  | "U" -> Event.Unmarked
  | "N" -> Event.Normal_read
  | "B" -> Event.Bypass_read
  | _ when String.length s > 1 && s.[0] = 'T' ->
    Event.Time_read (int_of_string (String.sub s 1 (String.length s - 1)))
  | _ -> Err.fail Err.Parse "Trace_io: bad read mark %s" s

let wmark_str = function Event.Normal_write -> "N" | Event.Bypass_write -> "B"

let wmark_of_str = function
  | "N" -> Event.Normal_write
  | "B" -> Event.Bypass_write
  | s -> Err.fail Err.Parse "Trace_io: bad write mark %s" s

let write_channel oc (t : Trace.t) =
  let pr fmt = Printf.fprintf oc fmt in
  pr "hscd-trace 1\n";
  pr "words %d\n" t.layout.Shape.total_words;
  List.iter
    (fun (a : Shape.t) ->
      pr "array %s %d %s\n" a.name a.base (String.concat " " (List.map string_of_int a.dims)))
    (Shape.arrays_in_order t.layout);
  Array.iteri (fun i v -> if v <> 0 then pr "golden %d %d\n" i v) t.golden_memory;
  Array.iter
    (fun (e : Trace.epoch) ->
      (match e.kind with
      | Trace.Serial -> pr "epoch serial\n"
      | Trace.Parallel { lo; hi } -> pr "epoch parallel %d %d\n" lo hi);
      Array.iter
        (fun (task : Trace.task) ->
          pr "task %d\n" task.iter;
          Array.iter
            (fun ev ->
              match ev with
              | Event.Compute n -> pr "C %d\n" n
              | Event.Read { addr; mark; value; array } ->
                pr "R %d %s %d %s\n" addr (mark_str mark) value array
              | Event.Write { addr; mark; value; array } ->
                pr "W %d %s %d %s\n" addr (wmark_str mark) value array
              | Event.Lock -> pr "L\n"
              | Event.Unlock -> pr "U\n")
            task.events)
        e.tasks)
    t.epochs

let save path t =
  let oc = open_out path in
  (* close_out_noerr: close_out itself can raise (flush of a full disk)
     and would leak the descriptor from inside this handler *)
  (try write_channel oc t with exn -> close_out_noerr oc; raise exn);
  close_out oc

(* --- loading --- *)

type builder = {
  mutable words : int;
  mutable arrays : (string * int * int list) list;  (* name, base, dims; reversed *)
  mutable golden : (int * int) list;
  mutable epochs : Trace.epoch list;  (* reversed *)
  mutable cur_kind : Trace.epoch_kind option;
  mutable cur_tasks : Trace.task list;  (* reversed *)
  mutable cur_iter : int;
  mutable cur_events : Event.t list;  (* reversed *)
  mutable in_task : bool;
  mutable total : int;
}

let flush_task b =
  if b.in_task then begin
    b.cur_tasks <-
      { Trace.iter = b.cur_iter; events = Array.of_list (List.rev b.cur_events) } :: b.cur_tasks;
    b.cur_events <- [];
    b.in_task <- false
  end

let flush_epoch b =
  flush_task b;
  match b.cur_kind with
  | None -> ()
  | Some kind ->
    b.epochs <- { Trace.kind; tasks = Array.of_list (List.rev b.cur_tasks) } :: b.epochs;
    b.cur_tasks <- [];
    b.cur_kind <- None

let parse_line b line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | [ "hscd-trace"; "1" ] -> ()
  | [ "words"; n ] -> b.words <- int_of_string n
  | "array" :: name :: base :: dims ->
    b.arrays <- (name, int_of_string base, List.map int_of_string dims) :: b.arrays
  | [ "golden"; i; v ] -> b.golden <- (int_of_string i, int_of_string v) :: b.golden
  | [ "epoch"; "serial" ] ->
    flush_epoch b;
    b.cur_kind <- Some Trace.Serial
  | [ "epoch"; "parallel"; lo; hi ] ->
    flush_epoch b;
    b.cur_kind <- Some (Trace.Parallel { lo = int_of_string lo; hi = int_of_string hi })
  | [ "task"; iter ] ->
    flush_task b;
    b.cur_iter <- int_of_string iter;
    b.in_task <- true
  | [ "C"; n ] -> b.cur_events <- Event.Compute (int_of_string n) :: b.cur_events
  | [ "R"; addr; mark; value; array ] ->
    b.total <- b.total + 1;
    b.cur_events <-
      Event.Read
        { addr = int_of_string addr; mark = mark_of_str mark; value = int_of_string value; array }
      :: b.cur_events
  | [ "W"; addr; mark; value; array ] ->
    b.total <- b.total + 1;
    b.cur_events <-
      Event.Write
        { addr = int_of_string addr; mark = wmark_of_str mark; value = int_of_string value; array }
      :: b.cur_events
  | [ "L" ] -> b.cur_events <- Event.Lock :: b.cur_events
  | [ "U" ] -> b.cur_events <- Event.Unlock :: b.cur_events
  | _ -> Err.fail Err.Parse "Trace_io: bad line: %s" line

let load path : Trace.t =
  let b =
    {
      words = 0;
      arrays = [];
      golden = [];
      epochs = [];
      cur_kind = None;
      cur_tasks = [];
      cur_iter = 0;
      cur_events = [];
      in_task = false;
      total = 0;
    }
  in
  let ic = try open_in path with Sys_error m -> Err.fail Err.Io "Trace_io: %s" m in
  (try
     while true do
       parse_line b (input_line ic)
     done
   with
  | End_of_file -> close_in_noerr ic
  | exn ->
    close_in_noerr ic;
    raise exn);
  flush_epoch b;
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (name, base, dims) ->
      Hashtbl.replace arrays name
        { Shape.name; dims; size = Shape.size_of_dims dims; base })
    b.arrays;
  let golden = Array.make (max 1 b.words) 0 in
  List.iter (fun (i, v) -> golden.(i) <- v) b.golden;
  {
    Trace.epochs = Array.of_list (List.rev b.epochs);
    layout = { Shape.arrays; total_words = b.words };
    golden_memory = golden;
    total_events = b.total;
  }

(** Structural equality of traces (for round-trip tests). *)
let equal (a : Trace.t) (b : Trace.t) =
  a.epochs = b.epochs && a.golden_memory = b.golden_memory
  && a.layout.Shape.total_words = b.layout.Shape.total_words

(* ------------------------------------------------------------------ *)
(* Binary trace formats: direct dumps of the packed slabs.             *)
(*                                                                     *)
(* v2 layout (all ints 8-byte little-endian two's complement):         *)
(*   magic "HSCDTRC2"                                                  *)
(*   total_words, n_arrays, then per array: name, base, n_dims, dims   *)
(*   golden_len, n_nonzero, then (index, value) pairs                  *)
(*   n_symbols, then names in id order                                 *)
(*   rmark_max_code                                                    *)
(*   total_events, n_slots, max_tickets                                *)
(*   n_epochs, then per epoch: kind (0 serial | 1 lo hi), n_tickets,   *)
(*     n_tasks, then per task: iter off len ticket0 n_locks            *)
(*   five slabs, live slots only: ops addrs values marks arrs          *)
(*   checksum (avalanche mix folded over every value above)            *)
(*                                                                     *)
(* v3 ("HSCDTRC3", written by [write_packed], mappable) moves all      *)
(* integrity data into the header so the slabs can be loaded zero-copy *)
(* with [Unix.map_file] and validated lazily:                          *)
(*   header identical to v2 through the epoch/task descriptors, then   *)
(*   chunk_words, and per slab ceil(n_slots/chunk_words) chunk         *)
(*   checksums (row-major: slab 0's chunks, then slab 1's, ...), each  *)
(*   seeded with the slab and chunk index so swapped or relocated      *)
(*   chunks cannot cancel out; then the header checksum (raw, over     *)
(*   everything above including the chunk table); then zero padding to *)
(*   an 8-byte file offset; then the five slabs as raw unchecksummed   *)
(*   words (their integrity is the chunk table's). Nothing follows the *)
(*   slabs, so the expected file length is known from the header.      *)
(* ------------------------------------------------------------------ *)

let binary_magic_v2 = "HSCDTRC2"
let binary_magic = "HSCDTRC3"

(** Slab words covered by one v3 chunk checksum (512 KiB of file). *)
let chunk_words = 65536

module Slab = Trace.Slab

(* order-sensitive avalanche fold — a single flipped bit anywhere in the
   stream avalanches through the final sum *)
let mix h v =
  let h = (h lxor v) * 0x9E3779B1 in
  (h lxor (h lsr 27)) * 0x85EBCA77

let corrupt what = Err.fail Err.Corrupt "Trace_io: corrupt binary trace (%s)" what

(* domain-separated seed per (slab, chunk): a chunk that checks out in the
   wrong slot is still rejected *)
let chunk_seed slab c = mix (mix 0 (0xC0FFEE + slab)) c

let chunks_of ~n ~cw = if n = 0 then 0 else ((n - 1) / cw) + 1

type bin_writer = { oc : out_channel; wscratch : Bytes.t; mutable wsum : int }

let put_raw w v =
  Bytes.set_int64_le w.wscratch 0 (Int64.of_int v);
  output_bytes w.oc w.wscratch

let put_int w v =
  put_raw w v;
  w.wsum <- mix w.wsum v

let put_str w s =
  put_int w (String.length s);
  output_string w.oc s;
  String.iter (fun c -> w.wsum <- mix w.wsum (Char.code c)) s

let write_packed_channel ?(chunk_words = chunk_words) oc (p : Trace.packed) =
  output_string oc binary_magic;
  let w = { oc; wscratch = Bytes.create 8; wsum = 0 } in
  (* address map *)
  put_int w p.Trace.p_layout.Shape.total_words;
  let arrays = Shape.arrays_in_order p.Trace.p_layout in
  put_int w (List.length arrays);
  List.iter
    (fun (a : Shape.t) ->
      put_str w a.name;
      put_int w a.base;
      put_int w (List.length a.dims);
      List.iter (put_int w) a.dims)
    arrays;
  (* golden memory, sparse *)
  let golden = p.Trace.p_golden in
  put_int w (Array.length golden);
  let nz = Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 golden in
  put_int w nz;
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        put_int w i;
        put_int w v
      end)
    golden;
  (* interner (id order) and the mark decode table's extent *)
  let names = Hscd_util.Symtab.names p.Trace.symtab in
  put_int w (Array.length names);
  Array.iter (put_str w) names;
  put_int w (Array.length p.Trace.rmark_table - 1);
  (* scalars *)
  put_int w p.Trace.p_total_events;
  put_int w p.Trace.n_slots;
  put_int w p.Trace.p_max_tickets;
  (* epoch / task descriptors *)
  put_int w (Array.length p.Trace.p_epochs);
  Array.iter
    (fun (e : Trace.pepoch) ->
      (match e.p_kind with
      | Trace.Serial -> put_int w 0
      | Trace.Parallel { lo; hi } ->
        put_int w 1;
        put_int w lo;
        put_int w hi);
      put_int w e.p_n_tickets;
      put_int w (Array.length e.p_tasks);
      Array.iter
        (fun (t : Trace.ptask) ->
          put_int w t.p_iter;
          put_int w t.off;
          put_int w t.len;
          put_int w t.ticket0;
          put_int w t.n_locks)
        e.p_tasks)
    p.Trace.p_epochs;
  (* chunk checksum table: computed over the live slab words before the
     slabs themselves are written, and folded into the header checksum so
     the table is tamper-evident *)
  let n = p.Trace.n_slots in
  let cw = chunk_words in
  put_int w cw;
  let slabs = [| p.Trace.ops; p.Trace.addrs; p.Trace.values; p.Trace.marks; p.Trace.arrs |] in
  let nchunks = chunks_of ~n ~cw in
  Array.iteri
    (fun j s ->
      for c = 0 to nchunks - 1 do
        let sum = ref (chunk_seed j c) in
        for i = c * cw to min n ((c + 1) * cw) - 1 do
          sum := mix !sum (Slab.get s i)
        done;
        put_int w !sum
      done)
    slabs;
  (* header checksum, written raw (not folded into itself) *)
  put_raw w w.wsum;
  (* zero padding to an 8-byte file offset, so [Unix.map_file] can map
     the slab region directly as a word-aligned [Bigarray] *)
  let pad = (8 - (pos_out oc mod 8)) mod 8 in
  for _ = 1 to pad do
    output_char oc '\000'
  done;
  (* slabs — live slots only (builder-grown capacity is not persisted);
     raw words, covered by the chunk table rather than the header sum *)
  Array.iter
    (fun s ->
      for i = 0 to n - 1 do
        put_raw w (Slab.get s i)
      done)
    slabs

(* [chunk_words] is the lazy-validation granule of the chunk table; the
   default suits real traces, tests shrink it to exercise multi-chunk
   maps without gigantic fixtures. *)
let write_packed ?chunk_words path p =
  let oc = open_out_bin path in
  (try write_packed_channel ?chunk_words oc p
   with exn ->
     close_out_noerr oc;
     raise exn);
  close_out oc

(* Buffered reader: decodes words out of a 64 KiB block buffer instead of
   issuing one [really_input] per 8-byte field — the scalar-read path cost
   dominated binary loading before slab I/O went through [Bytes] blocks. *)
type bin_reader = {
  ic : in_channel;
  rbuf : Bytes.t;
  mutable rpos : int;  (* read cursor within [rbuf] *)
  mutable rlen : int;  (* valid bytes in [rbuf] *)
  mutable rbase : int;  (* file offset of [rbuf]'s first byte *)
  mutable rsum : int;
  rlimit : int;  (* total file length *)
}

let reader ic =
  { ic; rbuf = Bytes.create 65536; rpos = 0; rlen = 0; rbase = pos_in ic; rsum = 0;
    rlimit = in_channel_length ic }

(* absolute file offset of the next unconsumed byte *)
let tell r = r.rbase + r.rpos

(* make at least [n] bytes (n <= buffer size) available at [rpos] *)
let ensure r n =
  if r.rlen - r.rpos < n then begin
    let rem = r.rlen - r.rpos in
    Bytes.blit r.rbuf r.rpos r.rbuf 0 rem;
    r.rbase <- r.rbase + r.rpos;
    r.rpos <- 0;
    r.rlen <- rem;
    while r.rlen < n do
      let k = input r.ic r.rbuf r.rlen (Bytes.length r.rbuf - r.rlen) in
      if k = 0 then corrupt "truncated";
      r.rlen <- r.rlen + k
    done
  end

let get_raw_int r =
  ensure r 8;
  let v = Int64.to_int (Bytes.get_int64_le r.rbuf r.rpos) in
  r.rpos <- r.rpos + 8;
  v

let get_int r =
  let v = get_raw_int r in
  r.rsum <- mix r.rsum v;
  v

(* every count names items that occupy at least one byte in the file, so
   the file length bounds every plausible count — a corrupted field that
   decodes huge is rejected here instead of reaching an allocation *)
let get_count r what =
  let v = get_int r in
  if v < 0 || v > r.rlimit then corrupt what;
  v

let get_str r =
  let n = get_count r "string length" in
  let b = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if r.rpos >= r.rlen then ensure r 1;
    let k = min (n - !filled) (r.rlen - r.rpos) in
    Bytes.blit r.rbuf r.rpos b !filled k;
    r.rpos <- r.rpos + k;
    filled := !filled + k
  done;
  let s = Bytes.unsafe_to_string b in
  String.iter (fun c -> r.rsum <- mix r.rsum (Char.code c)) s;
  s

let skip r n =
  ensure r n;
  r.rpos <- r.rpos + n

(* explicit in-order loop: the reader is effectful, so Array.init /
   List.init (unspecified application order) must not drive it *)
let read_seq n f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go n []

type version = V2 | V3

let read_magic r =
  if r.rlimit - tell r < 8 then corrupt "not a binary trace: short file";
  ensure r 8;
  let m = Bytes.sub_string r.rbuf r.rpos 8 in
  r.rpos <- r.rpos + 8;
  if m = binary_magic then V3
  else if m = binary_magic_v2 then V2
  else corrupt "not a binary trace: bad magic"

(* everything before the slab region, parsed and validated eagerly by
   both the buffered and the mmap loaders *)
type header = {
  h_layout : Shape.layout;
  h_golden : int array;
  h_symtab : Hscd_util.Symtab.t;
  h_n_syms : int;
  h_max_code : int;
  h_rmark_table : Event.rmark array;
  h_total_events : int;
  h_n_slots : int;
  h_max_tickets : int;
  h_epochs : Trace.pepoch array;
  h_chunk_words : int;  (** v3 only; 0 for v2 *)
  h_sums : int array;  (** v3 only; [5 * nchunks], row-major by slab *)
  h_slab_base : int;  (** v3 only; absolute file offset of the slab region *)
}

let read_header r version : header =
  let total_words = get_count r "total_words" in
  let n_arrays = get_count r "array count" in
  let array_list =
    read_seq n_arrays (fun () ->
        let name = get_str r in
        let base = get_int r in
        if base < 0 then corrupt "array base";
        let n_dims = get_count r "dim count" in
        let dims = read_seq n_dims (fun () -> get_int r) in
        if List.exists (fun d -> d <= 0) dims then corrupt "array dimension";
        (name, base, dims))
  in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (name, base, dims) ->
      Hashtbl.replace arrays name { Shape.name; dims; size = Shape.size_of_dims dims; base })
    array_list;
  let layout = { Shape.arrays; total_words } in
  let golden_len = get_count r "golden length" in
  let golden = Array.make golden_len 0 in
  let nz = get_count r "golden nonzeros" in
  for _ = 1 to nz do
    let i = get_int r in
    let v = get_int r in
    if i < 0 || i >= golden_len then corrupt "golden index";
    golden.(i) <- v
  done;
  let n_syms = get_count r "symbol count" in
  let names = read_seq n_syms (fun () -> get_str r) in
  let symtab = Hscd_util.Symtab.of_names names in
  let max_code = get_count r "rmark max code" in
  let rmark_table = Event.Code.rmark_table ~max_code in
  let p_total_events = get_count r "total events" in
  let n_slots = get_count r "slot count" in
  let p_max_tickets = get_count r "max tickets" in
  let n_epochs = get_count r "epoch count" in
  let epoch_list =
    read_seq n_epochs (fun () ->
        let p_kind =
          match get_int r with
          | 0 -> Trace.Serial
          | 1 ->
            let lo = get_int r in
            let hi = get_int r in
            Trace.Parallel { lo; hi }
          | _ -> corrupt "epoch kind"
        in
        let p_n_tickets = get_int r in
        let n_tasks = get_count r "task count" in
        let task_list =
          read_seq n_tasks (fun () ->
              let p_iter = get_int r in
              let off = get_int r in
              let len = get_int r in
              let ticket0 = get_int r in
              let n_locks = get_int r in
              if off < 0 || len < 0 || off + len > n_slots then corrupt "task bounds";
              { Trace.p_iter; off; len; ticket0; n_locks })
        in
        { Trace.p_kind; p_tasks = Array.of_list task_list; p_n_tickets })
  in
  let p_epochs = Array.of_list epoch_list in
  let h =
    {
      h_layout = layout;
      h_golden = golden;
      h_symtab = symtab;
      h_n_syms = n_syms;
      h_max_code = max_code;
      h_rmark_table = rmark_table;
      h_total_events = p_total_events;
      h_n_slots = n_slots;
      h_max_tickets = p_max_tickets;
      h_epochs = p_epochs;
      h_chunk_words = 0;
      h_sums = [||];
      h_slab_base = 0;
    }
  in
  match version with
  | V2 -> h
  | V3 ->
    (* not an item count (a small trace still records the full chunk
       granule), so range-check directly instead of via [get_count] *)
    let cw = get_int r in
    if cw < 1 || cw > 1 lsl 30 then corrupt "chunk words";
    let nchunks = chunks_of ~n:n_slots ~cw in
    let sums = Array.make (5 * nchunks) 0 in
    for i = 0 to (5 * nchunks) - 1 do
      sums.(i) <- get_int r
    done;
    let sum = r.rsum in
    if get_raw_int r <> sum then corrupt "header checksum mismatch";
    skip r ((8 - (tell r mod 8)) mod 8);
    let slab_base = tell r in
    (* nothing follows the slabs, so truncation (and trailing junk) is
       caught before any slab word is read or mapped *)
    if r.rlimit <> slab_base + (5 * n_slots * 8) then corrupt "file length";
    { h with h_chunk_words = cw; h_sums = sums; h_slab_base = slab_base }

(* per-slot structural validation; ops/marks/arrs interplay means it runs
   over a slot range, not per chunk *)
let validate_slots ~ops ~marks ~arrs ~n_syms ~max_code lo hi =
  for i = lo to hi - 1 do
    let op = Slab.get ops i in
    if op < Event.Code.compute || op > Event.Code.unlock then corrupt "opcode";
    if
      (op = Event.Code.read || op = Event.Code.write)
      && (Slab.get arrs i < 0 || Slab.get arrs i >= n_syms)
    then corrupt "array id";
    if op = Event.Code.read && (Slab.get marks i < 0 || Slab.get marks i > max_code) then
      corrupt "mark code"
  done

let packed_of_header (h : header) slabs : Trace.packed =
  {
    Trace.ops = slabs.(0);
    addrs = slabs.(1);
    values = slabs.(2);
    marks = slabs.(3);
    arrs = slabs.(4);
    p_epochs = h.h_epochs;
    symtab = h.h_symtab;
    rmark_table = h.h_rmark_table;
    p_layout = h.h_layout;
    p_golden = h.h_golden;
    p_total_events = h.h_total_events;
    n_slots = h.h_n_slots;
    p_max_tickets = h.h_max_tickets;
  }

(* one v3 slab via the buffered reader, verifying each chunk as it
   streams past *)
let read_slab_v3 r ~n ~cw ~sums ~slab =
  let s = Slab.create (max 1 n) in
  let nchunks = chunks_of ~n ~cw in
  for c = 0 to nchunks - 1 do
    let sum = ref (chunk_seed slab c) in
    for i = c * cw to min n ((c + 1) * cw) - 1 do
      let v = get_raw_int r in
      Slab.set s i v;
      sum := mix !sum v
    done;
    if !sum <> sums.((slab * nchunks) + c) then corrupt "slab chunk checksum"
  done;
  s

let read_packed_channel ic : Trace.packed =
  let r = reader ic in
  let version = read_magic r in
  let h = read_header r version in
  let n = h.h_n_slots in
  let slabs =
    match version with
    | V2 ->
      (* slabs at [pack]'s canonical capacity *)
      let slab () =
        let s = Slab.create (max 1 n) in
        for i = 0 to n - 1 do
          Slab.set s i (get_int r)
        done;
        s
      in
      let ops = slab () in
      let addrs = slab () in
      let values = slab () in
      let marks = slab () in
      let arrs = slab () in
      let sum = r.rsum in
      if get_raw_int r <> sum then corrupt "checksum mismatch";
      [| ops; addrs; values; marks; arrs |]
    | V3 ->
      let out = Array.make 5 (Slab.create 1) in
      for j = 0 to 4 do
        out.(j) <- read_slab_v3 r ~n ~cw:h.h_chunk_words ~sums:h.h_sums ~slab:j
      done;
      out
  in
  validate_slots ~ops:slabs.(0) ~marks:slabs.(3) ~arrs:slabs.(4) ~n_syms:h.h_n_syms
    ~max_code:h.h_max_code 0 n;
  packed_of_header h slabs

(** Load a binary packed trace, validating structure and checksum; raises
    [Hscd_error.Error] (kind [Corrupt]) on anything truncated, corrupt,
    or not in the format, and (kind [Io]) on OS-level failures. *)
let read_packed path =
  let ic =
    try open_in_bin path with Sys_error m -> Err.fail Err.Io "Trace_io: %s" m
  in
  let p =
    try read_packed_channel ic
    with exn ->
      close_in_noerr ic;
      raise exn
  in
  close_in ic;
  p

(** {!read_packed} as a [result] — the typed-error API: [Error] has kind
    [Corrupt] for format/checksum violations, [Io] for OS failures, and
    never lets an exception escape. *)
let read_packed_result path =
  Err.guard ~context:path (fun () -> read_packed path)

(** {!load} as a [result]: [Parse] for syntax errors, [Io] for OS
    failures. *)
let load_result path =
  Err.guard ~default:Err.Parse ~context:path (fun () -> load path)

(* ------------------------------------------------------------------ *)
(* Zero-copy loading: the v3 slab region [Unix.map_file]d straight into  *)
(* the packed trace's Bigarray slabs. The header is parsed and verified  *)
(* eagerly (it is small); slab words are faulted in by the kernel on     *)
(* first access and checked lazily, one 512 KiB chunk at a time, as the  *)
(* replay front reaches them — opening a trace and replaying its first   *)
(* epoch touches O(header + first epoch) bytes, not O(file).             *)
(* ------------------------------------------------------------------ *)

(* per-epoch [lo, hi) slot span, for chunk-granular lazy validation *)
let epoch_spans (p : Trace.packed) =
  Array.map
    (fun (e : Trace.pepoch) ->
      Array.fold_left
        (fun (lo, hi) (t : Trace.ptask) -> (min lo t.Trace.off, max hi (t.Trace.off + t.Trace.len)))
        (max_int, 0) e.Trace.p_tasks
      |> fun (lo, hi) -> if hi <= 0 then (0, 0) else (lo, hi))
    p.Trace.p_epochs

module Mapped = struct
  type t = {
    m_trace : Trace.packed;
    m_chunk_words : int;
    m_nchunks : int;  (* per slab *)
    m_sums : int array;  (* [5 * m_nchunks]; unused once every chunk is ok *)
    m_chunk_ok : Bytes.t;  (* memo: '\001' once a chunk checksum verified *)
    m_epoch_ok : Bytes.t;  (* memo: '\001' once an epoch's slots verified *)
    m_spans : (int * int) array;
    m_n_syms : int;
    m_max_code : int;
  }

  let trace m = m.m_trace

  let slab_of m j =
    let p = m.m_trace in
    match j with
    | 0 -> p.Trace.ops
    | 1 -> p.Trace.addrs
    | 2 -> p.Trace.values
    | 3 -> p.Trace.marks
    | _ -> p.Trace.arrs

  let validate_chunk m j c =
    let idx = (j * m.m_nchunks) + c in
    if Bytes.get m.m_chunk_ok idx = '\000' then begin
      let s = slab_of m j in
      let n = m.m_trace.Trace.n_slots in
      let cw = m.m_chunk_words in
      let sum = ref (chunk_seed j c) in
      for i = c * cw to min n ((c + 1) * cw) - 1 do
        sum := mix !sum (Slab.get s i)
      done;
      if !sum <> m.m_sums.(idx) then corrupt "slab chunk checksum";
      Bytes.set m.m_chunk_ok idx '\001'
    end

  (** Verify every chunk overlapping epoch [e]'s slot span plus the
      structural per-slot invariants, memoized. Raises [Hscd_error.Error]
      (kind [Corrupt]) — wire it to {!Engine.run}'s [on_epoch] so a
      corrupted region is rejected when replay reaches it. *)
  let validate_epoch m e =
    if e >= 0 && e < Bytes.length m.m_epoch_ok && Bytes.get m.m_epoch_ok e = '\000' then begin
      let lo, hi = m.m_spans.(e) in
      if hi > lo then begin
        let cw = m.m_chunk_words in
        for j = 0 to 4 do
          for c = lo / cw to (hi - 1) / cw do
            validate_chunk m j c
          done
        done;
        validate_slots ~ops:(slab_of m 0) ~marks:(slab_of m 3) ~arrs:(slab_of m 4)
          ~n_syms:m.m_n_syms ~max_code:m.m_max_code lo hi
      end;
      Bytes.set m.m_epoch_ok e '\001'
    end

  (** Force full validation (all chunks, all epochs) — the sharded replay
      planner walks every slot up front, so it calls this first. *)
  let validate_all m =
    for j = 0 to 4 do
      for c = 0 to m.m_nchunks - 1 do
        validate_chunk m j c
      done
    done;
    for e = 0 to Bytes.length m.m_epoch_ok - 1 do
      validate_epoch m e
    done

  (* a trace loaded eagerly through the buffered reader: everything is
     already verified, the memos start full *)
  let of_validated (p : Trace.packed) =
    let nchunks = chunks_of ~n:p.Trace.n_slots ~cw:chunk_words in
    {
      m_trace = p;
      m_chunk_words = chunk_words;
      m_nchunks = nchunks;
      m_sums = [||];
      m_chunk_ok = Bytes.make (5 * nchunks) '\001';
      m_epoch_ok = Bytes.make (Array.length p.Trace.p_epochs) '\001';
      m_spans = epoch_spans p;
      m_n_syms = Array.length (Hscd_util.Symtab.names p.Trace.symtab);
      m_max_code = Array.length p.Trace.rmark_table - 1;
    }
end

(** Open a binary packed trace with the slab region memory-mapped
    zero-copy. v2 traces, big-endian hosts, and empty slab regions fall
    back to the buffered reader (returning a fully validated {!Mapped.t});
    v3 traces on little-endian hosts map the file and validate lazily.
    Raises [Hscd_error.Error]: [Io] for OS/mmap failures, [Corrupt] for
    header damage (slab damage surfaces from {!Mapped.validate_epoch}). *)
let map_packed path : Mapped.t =
  let ic = try open_in_bin path with Sys_error m -> Err.fail Err.Io "Trace_io: %s" m in
  let m =
    try
      let r = reader ic in
      let version = read_magic r in
      let fallback () =
        seek_in ic 0;
        Mapped.of_validated (read_packed_channel ic)
      in
      match version with
      | V2 -> fallback ()
      | V3 ->
        let h = read_header r V3 in
        if Sys.big_endian || h.h_n_slots = 0 then fallback ()
        else begin
          let region =
            try
              Bigarray.array1_of_genarray
                (Unix.map_file (Unix.descr_of_in_channel ic)
                   ~pos:(Int64.of_int h.h_slab_base) Bigarray.int Bigarray.c_layout false
                   [| 5 * h.h_n_slots |])
            with Unix.Unix_error (e, _, _) ->
              Err.fail Err.Io "Trace_io: mmap %s: %s" path (Unix.error_message e)
          in
          let slab j = Slab.sub region (j * h.h_n_slots) h.h_n_slots in
          let p = packed_of_header h [| slab 0; slab 1; slab 2; slab 3; slab 4 |] in
          let nchunks = chunks_of ~n:h.h_n_slots ~cw:h.h_chunk_words in
          {
            Mapped.m_trace = p;
            m_chunk_words = h.h_chunk_words;
            m_nchunks = nchunks;
            m_sums = h.h_sums;
            m_chunk_ok = Bytes.make (5 * nchunks) '\000';
            m_epoch_ok = Bytes.make (Array.length h.h_epochs) '\000';
            m_spans = epoch_spans p;
            m_n_syms = h.h_n_syms;
            m_max_code = h.h_max_code;
          }
        end
    with exn ->
      close_in_noerr ic;
      raise exn
  in
  close_in ic;
  m

(** {!map_packed} as a [result], mirroring {!read_packed_result}. *)
let map_packed_result path = Err.guard ~context:path (fun () -> map_packed path)

(** Cheap sniff: does [path] start with a binary magic (either version)?
    (Lets the CLI auto-detect binary vs. text traces.) *)
let is_binary path =
  match open_in_bin path with
  | exception Sys_error _ -> false (* unopenable means "not binary" too *)
  | ic ->
  let b = Bytes.create (String.length binary_magic) in
  let ok =
    (* any read failure (not just a short file) means "not binary" — the
       caller's real open will surface the typed error; what matters here
       is that the sniff descriptor is closed on every path *)
    try
      really_input ic b 0 (Bytes.length b);
      let m = Bytes.to_string b in
      m = binary_magic || m = binary_magic_v2
    with End_of_file | Sys_error _ -> false
  in
  close_in_noerr ic;
  ok

(** Structural equality of packed traces over their *logical* content:
    live slab prefixes (capacities may differ between [pack] and a grown
    {!Trace.Builder}), descriptors, interner contents, marks table,
    address map, and golden memory. *)
let equal_packed (a : Trace.packed) (b : Trace.packed) =
  let n = a.Trace.n_slots in
  let prefix_equal (x : Slab.t) (y : Slab.t) =
    Slab.length x >= n && Slab.length y >= n
    &&
    let rec go i = i >= n || (Slab.get x i = Slab.get y i && go (i + 1)) in
    go 0
  in
  n = b.Trace.n_slots
  && a.Trace.p_total_events = b.Trace.p_total_events
  && a.Trace.p_max_tickets = b.Trace.p_max_tickets
  && a.Trace.p_epochs = b.Trace.p_epochs
  && a.Trace.rmark_table = b.Trace.rmark_table
  && Hscd_util.Symtab.names a.Trace.symtab = Hscd_util.Symtab.names b.Trace.symtab
  && a.Trace.p_golden = b.Trace.p_golden
  && a.Trace.p_layout.Shape.total_words = b.Trace.p_layout.Shape.total_words
  && Shape.arrays_in_order a.Trace.p_layout = Shape.arrays_in_order b.Trace.p_layout
  && prefix_equal a.Trace.ops b.Trace.ops
  && prefix_equal a.Trace.addrs b.Trace.addrs
  && prefix_equal a.Trace.values b.Trace.values
  && prefix_equal a.Trace.marks b.Trace.marks
  && prefix_equal a.Trace.arrs b.Trace.arrs
