(** Plain-text serialization of traces, so a marked program's event stream
    can be generated once and replayed by external tooling (or inspected
    by hand). The format is line-oriented:

    {v
    hscd-trace 1
    words <total_words>
    array <name> <base> <dim> [<dim> ...]
    golden <index> <value>            (only non-zero words)
    epoch serial | epoch parallel <lo> <hi>
    task <iter>
    C <cycles>
    R <addr> <mark> <value> <array>   (mark: N|U|B|T<d>)
    W <addr> <mark> <value> <array>   (mark: N|B)
    L / U                             (lock / unlock)
    v} *)

module Event = Hscd_arch.Event
module Shape = Hscd_lang.Shape
module Err = Hscd_util.Hscd_error

let mark_str = function
  | Event.Unmarked -> "U"
  | Event.Normal_read -> "N"
  | Event.Bypass_read -> "B"
  | Event.Time_read d -> "T" ^ string_of_int d

let mark_of_str s =
  match s with
  | "U" -> Event.Unmarked
  | "N" -> Event.Normal_read
  | "B" -> Event.Bypass_read
  | _ when String.length s > 1 && s.[0] = 'T' ->
    Event.Time_read (int_of_string (String.sub s 1 (String.length s - 1)))
  | _ -> Err.fail Err.Parse "Trace_io: bad read mark %s" s

let wmark_str = function Event.Normal_write -> "N" | Event.Bypass_write -> "B"

let wmark_of_str = function
  | "N" -> Event.Normal_write
  | "B" -> Event.Bypass_write
  | s -> Err.fail Err.Parse "Trace_io: bad write mark %s" s

let write_channel oc (t : Trace.t) =
  let pr fmt = Printf.fprintf oc fmt in
  pr "hscd-trace 1\n";
  pr "words %d\n" t.layout.Shape.total_words;
  List.iter
    (fun (a : Shape.t) ->
      pr "array %s %d %s\n" a.name a.base (String.concat " " (List.map string_of_int a.dims)))
    (Shape.arrays_in_order t.layout);
  Array.iteri (fun i v -> if v <> 0 then pr "golden %d %d\n" i v) t.golden_memory;
  Array.iter
    (fun (e : Trace.epoch) ->
      (match e.kind with
      | Trace.Serial -> pr "epoch serial\n"
      | Trace.Parallel { lo; hi } -> pr "epoch parallel %d %d\n" lo hi);
      Array.iter
        (fun (task : Trace.task) ->
          pr "task %d\n" task.iter;
          Array.iter
            (fun ev ->
              match ev with
              | Event.Compute n -> pr "C %d\n" n
              | Event.Read { addr; mark; value; array } ->
                pr "R %d %s %d %s\n" addr (mark_str mark) value array
              | Event.Write { addr; mark; value; array } ->
                pr "W %d %s %d %s\n" addr (wmark_str mark) value array
              | Event.Lock -> pr "L\n"
              | Event.Unlock -> pr "U\n")
            task.events)
        e.tasks)
    t.epochs

let save path t =
  let oc = open_out path in
  (try write_channel oc t with exn -> close_out oc; raise exn);
  close_out oc

(* --- loading --- *)

type builder = {
  mutable words : int;
  mutable arrays : (string * int * int list) list;  (* name, base, dims; reversed *)
  mutable golden : (int * int) list;
  mutable epochs : Trace.epoch list;  (* reversed *)
  mutable cur_kind : Trace.epoch_kind option;
  mutable cur_tasks : Trace.task list;  (* reversed *)
  mutable cur_iter : int;
  mutable cur_events : Event.t list;  (* reversed *)
  mutable in_task : bool;
  mutable total : int;
}

let flush_task b =
  if b.in_task then begin
    b.cur_tasks <-
      { Trace.iter = b.cur_iter; events = Array.of_list (List.rev b.cur_events) } :: b.cur_tasks;
    b.cur_events <- [];
    b.in_task <- false
  end

let flush_epoch b =
  flush_task b;
  match b.cur_kind with
  | None -> ()
  | Some kind ->
    b.epochs <- { Trace.kind; tasks = Array.of_list (List.rev b.cur_tasks) } :: b.epochs;
    b.cur_tasks <- [];
    b.cur_kind <- None

let parse_line b line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "" ] -> ()
  | [ "hscd-trace"; "1" ] -> ()
  | [ "words"; n ] -> b.words <- int_of_string n
  | "array" :: name :: base :: dims ->
    b.arrays <- (name, int_of_string base, List.map int_of_string dims) :: b.arrays
  | [ "golden"; i; v ] -> b.golden <- (int_of_string i, int_of_string v) :: b.golden
  | [ "epoch"; "serial" ] ->
    flush_epoch b;
    b.cur_kind <- Some Trace.Serial
  | [ "epoch"; "parallel"; lo; hi ] ->
    flush_epoch b;
    b.cur_kind <- Some (Trace.Parallel { lo = int_of_string lo; hi = int_of_string hi })
  | [ "task"; iter ] ->
    flush_task b;
    b.cur_iter <- int_of_string iter;
    b.in_task <- true
  | [ "C"; n ] -> b.cur_events <- Event.Compute (int_of_string n) :: b.cur_events
  | [ "R"; addr; mark; value; array ] ->
    b.total <- b.total + 1;
    b.cur_events <-
      Event.Read
        { addr = int_of_string addr; mark = mark_of_str mark; value = int_of_string value; array }
      :: b.cur_events
  | [ "W"; addr; mark; value; array ] ->
    b.total <- b.total + 1;
    b.cur_events <-
      Event.Write
        { addr = int_of_string addr; mark = wmark_of_str mark; value = int_of_string value; array }
      :: b.cur_events
  | [ "L" ] -> b.cur_events <- Event.Lock :: b.cur_events
  | [ "U" ] -> b.cur_events <- Event.Unlock :: b.cur_events
  | _ -> Err.fail Err.Parse "Trace_io: bad line: %s" line

let load path : Trace.t =
  let b =
    {
      words = 0;
      arrays = [];
      golden = [];
      epochs = [];
      cur_kind = None;
      cur_tasks = [];
      cur_iter = 0;
      cur_events = [];
      in_task = false;
      total = 0;
    }
  in
  let ic = try open_in path with Sys_error m -> Err.fail Err.Io "Trace_io: %s" m in
  (try
     while true do
       parse_line b (input_line ic)
     done
   with
  | End_of_file -> close_in ic
  | exn ->
    close_in ic;
    raise exn);
  flush_epoch b;
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (name, base, dims) ->
      Hashtbl.replace arrays name
        { Shape.name; dims; size = Shape.size_of_dims dims; base })
    b.arrays;
  let golden = Array.make (max 1 b.words) 0 in
  List.iter (fun (i, v) -> golden.(i) <- v) b.golden;
  {
    Trace.epochs = Array.of_list (List.rev b.epochs);
    layout = { Shape.arrays; total_words = b.words };
    golden_memory = golden;
    total_events = b.total;
  }

(** Structural equality of traces (for round-trip tests). *)
let equal (a : Trace.t) (b : Trace.t) =
  a.epochs = b.epochs && a.golden_memory = b.golden_memory
  && a.layout.Shape.total_words = b.layout.Shape.total_words

(* ------------------------------------------------------------------ *)
(* Binary trace format v2: direct dumps of the packed slabs.           *)
(*                                                                     *)
(* Layout (all ints 8-byte little-endian two's complement):            *)
(*   magic "HSCDTRC2"                                                  *)
(*   total_words, n_arrays, then per array: name, base, n_dims, dims   *)
(*   golden_len, n_nonzero, then (index, value) pairs                  *)
(*   n_symbols, then names in id order                                 *)
(*   rmark_max_code                                                    *)
(*   total_events, n_slots, max_tickets                                *)
(*   n_epochs, then per epoch: kind (0 serial | 1 lo hi), n_tickets,   *)
(*     n_tasks, then per task: iter off len ticket0 n_locks            *)
(*   five slabs, live slots only: ops addrs values marks arrs          *)
(*   checksum (avalanche mix folded over every value above)            *)
(* ------------------------------------------------------------------ *)

let binary_magic = "HSCDTRC2"

(* order-sensitive avalanche fold — a single flipped bit anywhere in the
   stream avalanches through the final sum *)
let mix h v =
  let h = (h lxor v) * 0x9E3779B1 in
  (h lxor (h lsr 27)) * 0x85EBCA77

let corrupt what = Err.fail Err.Corrupt "Trace_io: corrupt binary trace (%s)" what

type bin_writer = { oc : out_channel; wscratch : Bytes.t; mutable wsum : int }

let put_int w v =
  Bytes.set_int64_le w.wscratch 0 (Int64.of_int v);
  output_bytes w.oc w.wscratch;
  w.wsum <- mix w.wsum v

let put_str w s =
  put_int w (String.length s);
  output_string w.oc s;
  String.iter (fun c -> w.wsum <- mix w.wsum (Char.code c)) s

let write_packed_channel oc (p : Trace.packed) =
  output_string oc binary_magic;
  let w = { oc; wscratch = Bytes.create 8; wsum = 0 } in
  (* address map *)
  put_int w p.Trace.p_layout.Shape.total_words;
  let arrays = Shape.arrays_in_order p.Trace.p_layout in
  put_int w (List.length arrays);
  List.iter
    (fun (a : Shape.t) ->
      put_str w a.name;
      put_int w a.base;
      put_int w (List.length a.dims);
      List.iter (put_int w) a.dims)
    arrays;
  (* golden memory, sparse *)
  let golden = p.Trace.p_golden in
  put_int w (Array.length golden);
  let nz = Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 golden in
  put_int w nz;
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        put_int w i;
        put_int w v
      end)
    golden;
  (* interner (id order) and the mark decode table's extent *)
  let names = Hscd_util.Symtab.names p.Trace.symtab in
  put_int w (Array.length names);
  Array.iter (put_str w) names;
  put_int w (Array.length p.Trace.rmark_table - 1);
  (* scalars *)
  put_int w p.Trace.p_total_events;
  put_int w p.Trace.n_slots;
  put_int w p.Trace.p_max_tickets;
  (* epoch / task descriptors *)
  put_int w (Array.length p.Trace.p_epochs);
  Array.iter
    (fun (e : Trace.pepoch) ->
      (match e.p_kind with
      | Trace.Serial -> put_int w 0
      | Trace.Parallel { lo; hi } ->
        put_int w 1;
        put_int w lo;
        put_int w hi);
      put_int w e.p_n_tickets;
      put_int w (Array.length e.p_tasks);
      Array.iter
        (fun (t : Trace.ptask) ->
          put_int w t.p_iter;
          put_int w t.off;
          put_int w t.len;
          put_int w t.ticket0;
          put_int w t.n_locks)
        e.p_tasks)
    p.Trace.p_epochs;
  (* slabs — live slots only (builder-grown capacity is not persisted) *)
  let n = p.Trace.n_slots in
  let dump a =
    for i = 0 to n - 1 do
      put_int w a.(i)
    done
  in
  dump p.Trace.ops;
  dump p.Trace.addrs;
  dump p.Trace.values;
  dump p.Trace.marks;
  dump p.Trace.arrs;
  (* trailing checksum, written raw (not folded into itself) *)
  Bytes.set_int64_le w.wscratch 0 (Int64.of_int w.wsum);
  output_bytes oc w.wscratch

let write_packed path p =
  let oc = open_out_bin path in
  (try write_packed_channel oc p
   with exn ->
     close_out_noerr oc;
     raise exn);
  close_out oc

type bin_reader = { ic : in_channel; rscratch : Bytes.t; mutable rsum : int; rlimit : int }

let get_raw_int r =
  (try really_input r.ic r.rscratch 0 8 with End_of_file -> corrupt "truncated");
  Int64.to_int (Bytes.get_int64_le r.rscratch 0)

let get_int r =
  let v = get_raw_int r in
  r.rsum <- mix r.rsum v;
  v

(* every count names items that occupy at least one byte in the file, so
   the file length bounds every plausible count — a corrupted field that
   decodes huge is rejected here instead of reaching an allocation *)
let get_count r what =
  let v = get_int r in
  if v < 0 || v > r.rlimit then corrupt what;
  v

let get_str r =
  let n = get_count r "string length" in
  let b = Bytes.create n in
  (try really_input r.ic b 0 n with End_of_file -> corrupt "truncated");
  let s = Bytes.unsafe_to_string b in
  String.iter (fun c -> r.rsum <- mix r.rsum (Char.code c)) s;
  s

(* explicit in-order loop: the reader is effectful, so Array.init /
   List.init (unspecified application order) must not drive it *)
let read_seq n f =
  let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (f () :: acc) in
  go n []

let read_packed_channel ic : Trace.packed =
  let magic = Bytes.create (String.length binary_magic) in
  (try really_input ic magic 0 (Bytes.length magic)
   with End_of_file -> corrupt "not a binary trace: short file");
  if Bytes.to_string magic <> binary_magic then
    corrupt "not a binary trace: bad magic";
  let r = { ic; rscratch = Bytes.create 8; rsum = 0; rlimit = in_channel_length ic } in
  let total_words = get_count r "total_words" in
  let n_arrays = get_count r "array count" in
  let array_list =
    read_seq n_arrays (fun () ->
        let name = get_str r in
        let base = get_int r in
        if base < 0 then corrupt "array base";
        let n_dims = get_count r "dim count" in
        let dims = read_seq n_dims (fun () -> get_int r) in
        if List.exists (fun d -> d <= 0) dims then corrupt "array dimension";
        (name, base, dims))
  in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (name, base, dims) ->
      Hashtbl.replace arrays name { Shape.name; dims; size = Shape.size_of_dims dims; base })
    array_list;
  let layout = { Shape.arrays; total_words } in
  let golden_len = get_count r "golden length" in
  let golden = Array.make golden_len 0 in
  let nz = get_count r "golden nonzeros" in
  for _ = 1 to nz do
    let i = get_int r in
    let v = get_int r in
    if i < 0 || i >= golden_len then corrupt "golden index";
    golden.(i) <- v
  done;
  let n_syms = get_count r "symbol count" in
  let names = read_seq n_syms (fun () -> get_str r) in
  let symtab = Hscd_util.Symtab.of_names names in
  let max_code = get_count r "rmark max code" in
  let rmark_table = Event.Code.rmark_table ~max_code in
  let p_total_events = get_count r "total events" in
  let n_slots = get_count r "slot count" in
  let p_max_tickets = get_count r "max tickets" in
  let n_epochs = get_count r "epoch count" in
  let epoch_list =
    read_seq n_epochs (fun () ->
        let p_kind =
          match get_int r with
          | 0 -> Trace.Serial
          | 1 ->
            let lo = get_int r in
            let hi = get_int r in
            Trace.Parallel { lo; hi }
          | _ -> corrupt "epoch kind"
        in
        let p_n_tickets = get_int r in
        let n_tasks = get_count r "task count" in
        let task_list =
          read_seq n_tasks (fun () ->
              let p_iter = get_int r in
              let off = get_int r in
              let len = get_int r in
              let ticket0 = get_int r in
              let n_locks = get_int r in
              if off < 0 || len < 0 || off + len > n_slots then corrupt "task bounds";
              { Trace.p_iter; off; len; ticket0; n_locks })
        in
        { Trace.p_kind; p_tasks = Array.of_list task_list; p_n_tickets })
  in
  let p_epochs = Array.of_list epoch_list in
  (* slabs at [pack]'s canonical capacity *)
  let slab () =
    let a = Array.make (max 1 n_slots) 0 in
    for i = 0 to n_slots - 1 do
      a.(i) <- get_int r
    done;
    a
  in
  let ops = slab () in
  let addrs = slab () in
  let values = slab () in
  let marks = slab () in
  let arrs = slab () in
  for i = 0 to n_slots - 1 do
    let op = ops.(i) in
    if op < Event.Code.compute || op > Event.Code.unlock then corrupt "opcode";
    if (op = Event.Code.read || op = Event.Code.write) && (arrs.(i) < 0 || arrs.(i) >= n_syms)
    then corrupt "array id";
    if op = Event.Code.read && (marks.(i) < 0 || marks.(i) > max_code) then corrupt "mark code"
  done;
  let sum = r.rsum in
  if get_raw_int r <> sum then corrupt "checksum mismatch";
  {
    Trace.ops;
    addrs;
    values;
    marks;
    arrs;
    p_epochs;
    symtab;
    rmark_table;
    p_layout = layout;
    p_golden = golden;
    p_total_events;
    n_slots;
    p_max_tickets;
  }

(** Load a binary packed trace, validating structure and checksum; raises
    [Hscd_error.Error] (kind [Corrupt]) on anything truncated, corrupt,
    or not in the format, and (kind [Io]) on OS-level failures. *)
let read_packed path =
  let ic =
    try open_in_bin path with Sys_error m -> Err.fail Err.Io "Trace_io: %s" m
  in
  let p =
    try read_packed_channel ic
    with exn ->
      close_in_noerr ic;
      raise exn
  in
  close_in ic;
  p

(** {!read_packed} as a [result] — the typed-error API: [Error] has kind
    [Corrupt] for format/checksum violations, [Io] for OS failures, and
    never lets an exception escape. *)
let read_packed_result path =
  Err.guard ~context:path (fun () -> read_packed path)

(** {!load} as a [result]: [Parse] for syntax errors, [Io] for OS
    failures. *)
let load_result path =
  Err.guard ~default:Err.Parse ~context:path (fun () -> load path)

(** Cheap sniff: does [path] start with the binary magic? (Lets the CLI
    auto-detect binary vs. text traces.) *)
let is_binary path =
  let ic = open_in_bin path in
  let b = Bytes.create (String.length binary_magic) in
  let ok =
    try
      really_input ic b 0 (Bytes.length b);
      Bytes.to_string b = binary_magic
    with End_of_file -> false
  in
  close_in_noerr ic;
  ok

(** Structural equality of packed traces over their *logical* content:
    live slab prefixes (capacities may differ between [pack] and a grown
    {!Trace.Builder}), descriptors, interner contents, marks table,
    address map, and golden memory. *)
let equal_packed (a : Trace.packed) (b : Trace.packed) =
  let n = a.Trace.n_slots in
  let prefix_equal (x : int array) (y : int array) =
    Array.length x >= n && Array.length y >= n
    &&
    let rec go i = i >= n || (x.(i) = y.(i) && go (i + 1)) in
    go 0
  in
  n = b.Trace.n_slots
  && a.Trace.p_total_events = b.Trace.p_total_events
  && a.Trace.p_max_tickets = b.Trace.p_max_tickets
  && a.Trace.p_epochs = b.Trace.p_epochs
  && a.Trace.rmark_table = b.Trace.rmark_table
  && Hscd_util.Symtab.names a.Trace.symtab = Hscd_util.Symtab.names b.Trace.symtab
  && a.Trace.p_golden = b.Trace.p_golden
  && a.Trace.p_layout.Shape.total_words = b.Trace.p_layout.Shape.total_words
  && Shape.arrays_in_order a.Trace.p_layout = Shape.arrays_in_order b.Trace.p_layout
  && prefix_equal a.Trace.ops b.Trace.ops
  && prefix_equal a.Trace.addrs b.Trace.addrs
  && prefix_equal a.Trace.values b.Trace.values
  && prefix_equal a.Trace.marks b.Trace.marks
  && prefix_equal a.Trace.arrs b.Trace.arrs
