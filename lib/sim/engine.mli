(** The multiprocessor timing engine: replays a packed trace against one
    coherence scheme in global clock order, with barriers, ticket-ordered
    critical sections, static/dynamic scheduling, mid-task migration, and
    per-load verification against the golden interpreter. The hot path is
    allocation-free in steady state. *)

type violation = { epoch : int; proc : int; addr : int; expected : int; got : int }

type result = {
  cycles : int;
  metrics : Metrics.t;
  violations : violation list;  (** capped at {!max_violations} *)
  memory_ok : bool;  (** final scheme memory equals the golden memory *)
  network_load : float;  (** last estimated utilization *)
}

val max_violations : int

(** Native replay of the packed structure-of-arrays trace form. *)
val run :
  Hscd_arch.Config.t ->
  Hscd_coherence.Scheme.packed ->
  net:Hscd_network.Kruskal_snir.t ->
  traffic:Hscd_network.Traffic.t ->
  Trace.packed ->
  result

(** Legacy replay of the boxed event stream through the same timing
    model; bit-identical to {!run} on the packed form of the same trace
    (asserted by the test suite). *)
val run_boxed :
  Hscd_arch.Config.t ->
  Hscd_coherence.Scheme.packed ->
  net:Hscd_network.Kruskal_snir.t ->
  traffic:Hscd_network.Traffic.t ->
  Trace.t ->
  result
