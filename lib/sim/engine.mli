(** The multiprocessor timing engine: replays a packed trace against one
    coherence scheme in global clock order, with barriers, ticket-ordered
    critical sections, static/dynamic scheduling, mid-task migration, and
    per-load verification against the golden interpreter. The hot path is
    allocation-free in steady state. *)

type violation = { epoch : int; proc : int; addr : int; expected : int; got : int }

type result = {
  cycles : int;
  metrics : Metrics.t;
  violations : violation list;  (** capped at {!max_violations} *)
  memory_ok : bool;  (** final scheme memory equals the golden memory *)
  network_load : float;  (** last estimated utilization *)
}

val max_violations : int

(** Native replay of the packed structure-of-arrays trace form.
    [on_epoch] fires with the epoch index as replay enters each epoch —
    the hook {!Trace_io.Mapped.validate_epoch} plugs into for lazy
    validation of memory-mapped traces. *)
val run :
  ?on_epoch:(int -> unit) ->
  Hscd_arch.Config.t ->
  Hscd_coherence.Scheme.packed ->
  net:Hscd_network.Kruskal_snir.t ->
  traffic:Hscd_network.Traffic.t ->
  Trace.packed ->
  result

(** Sharded replay: partition the trace's accesses by cache-set group
    ({!Trace.Shard}), replay each shard against a private scheme slice —
    on its own domain when [parallel] (the default) and a team can be
    spawned, inline otherwise — and reconstruct the sequential timing at
    every epoch barrier. Deterministic and bit-identical across shard
    counts by construction: [run_sharded ~shards:n] equals
    [run_sharded ~shards:1] for every [n] (asserted by the test suite).
    Each slice replays its accesses in trace (slot) order — the golden
    interpreter's race-free order — where {!run} interleaves by clock;
    on fixtures where no scheme latency or classification depends on
    that interleaving the two engines agree exactly (asserted per
    curated fixture), and the final-memory verdict agrees always.
    Requires static scheduling and [migration_rate = 0]; callers go
    through {!Run.simulate_packed_sharded} for the typed error.
    Raises [Invalid_argument] on [shards < 1]. *)
val run_sharded :
  ?parallel:bool ->
  Hscd_arch.Config.t ->
  (module Hscd_coherence.Scheme.S) ->
  shards:int ->
  Trace.packed ->
  result

(** {!run_sharded} with the replay loop monomorphized to the BASE
    scheme: the per-event dispatch is a direct call. Same semantics. *)
val run_sharded_base :
  ?parallel:bool -> Hscd_arch.Config.t -> shards:int -> Trace.packed -> result

(** {!run_sharded} monomorphized to TPI. Same semantics. *)
val run_sharded_tpi :
  ?parallel:bool -> Hscd_arch.Config.t -> shards:int -> Trace.packed -> result

(** Legacy replay of the boxed event stream through the same timing
    model; bit-identical to {!run} on the packed form of the same trace
    (asserted by the test suite). *)
val run_boxed :
  Hscd_arch.Config.t ->
  Hscd_coherence.Scheme.packed ->
  net:Hscd_network.Kruskal_snir.t ->
  traffic:Hscd_network.Traffic.t ->
  Trace.t ->
  result
