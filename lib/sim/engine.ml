(** The multiprocessor timing engine.

    Replays a {!Trace.packed} trace against one coherence scheme: DOALL
    tasks are assigned to processors by the configured scheduling policy,
    events are processed in global clock order (a conservative
    discrete-event interleaving, so directory state transitions happen in
    simulated-time order), critical sections are granted in trace order
    via tickets, and every epoch ends with a barrier, the scheme's
    boundary work (two-phase resets, buffer drains) and a network-load
    update for the analytic delay model. Every load's value is checked
    against the golden interpreter — a failing scheme cannot hide.

    The hot path is allocation-free in steady state: events are decoded
    by index from the packed trace's unboxed int slabs (read marks via a
    preallocated decode table, so no [Time_read] cell is ever built),
    schemes fill a reused scratch {!Scheme.access_result}, the ready
    queue pops with {!Minheap.pop_min} (no option/tuple), work items are
    rank+offset encoded in a single int, a task's critical-section
    tickets are a base+count pair instead of a list, and all per-epoch
    scratch (processor states, ticket slots, idle set, heap, deques) is
    allocated once per run and reset across epochs.

    The next processor to run is picked from an indexed ready queue (a
    min-clock binary heap with ties broken on the processor index, the
    same order a linear lowest-clock scan would produce) rather than an
    O(P) scan per event. Processors leave the heap while blocked on a
    critical-section ticket — parked in a per-ticket slot and re-enqueued
    by the matching unlock — or while out of work, and idle processors are
    woken in index order when self-scheduled work reappears (a migrated
    task tail). Work queues are ring-buffer deques, so task distribution
    is O(1) per task instead of a quadratic list append.

    {!run_boxed} replays the legacy boxed event stream through the same
    timing model; it exists so tests can assert the packed path is
    bit-identical to it. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Deque = Hscd_util.Deque
module Minheap = Hscd_util.Minheap
module Symtab = Hscd_util.Symtab

type violation = { epoch : int; proc : int; addr : int; expected : int; got : int }

type result = {
  cycles : int;
  metrics : Metrics.t;
  violations : violation list;  (** capped at [max_violations] *)
  memory_ok : bool;  (** final scheme memory equals the golden memory *)
  network_load : float;  (** last estimated utilization *)
}

let max_violations = 10

(* ------------------------------------------------------------------ *)
(* Packed-native replay                                                *)
(* ------------------------------------------------------------------ *)

(* A work item is a task rank plus a resume offset (> 0 for migrated
   tails), packed into one immediate int so the work deques never box. *)
let w_bits = 31
let w_mask = (1 lsl w_bits) - 1
let w_item ~rank ~start = (rank lsl w_bits) lor start
let w_rank w = w lsr w_bits
let w_start w = w land w_mask

type pstate = {
  s_pidx : int;  (** this processor's index — no identity scans *)
  mutable s_clock : int;
  s_pending : int Deque.t;  (** static assignment, encoded work items *)
  mutable s_idx : int;  (** current slot (absolute slab index) *)
  mutable s_stop : int;  (** exclusive bound; < [s_end] when migrating away *)
  mutable s_end : int;  (** absolute end of the current task's slots *)
  mutable s_off : int;  (** current task's first slot *)
  mutable s_rank : int;  (** current task's rank, -1 when none *)
  mutable s_next_ticket : int;  (** next unclaimed ticket of the task *)
  mutable s_left : int;  (** tickets not yet claimed *)
}

let run (cfg : Config.t) (Scheme.Packed ((module S), sch)) ~(net : Kruskal_snir.t)
    ~(traffic : Traffic.t) (trace : Trace.packed) =
  let metrics = Metrics.create () in
  let violations = ref [] in
  let nviol = ref 0 in
  let global = ref 0 in
  let prng = Hscd_util.Prng.of_int 0x5ca1ab1e in
  let ops = trace.Trace.ops in
  let addrs = trace.Trace.addrs in
  let values = trace.Trace.values in
  let marks = trace.Trace.marks in
  let arrs = trace.Trace.arrs in
  let rmark_table = trace.Trace.rmark_table in
  (* scratch allocated once per run, reset across epochs *)
  let procs =
    Array.init cfg.processors (fun s_pidx ->
        { s_pidx; s_clock = 0; s_pending = Deque.create (); s_idx = 0; s_stop = 0; s_end = 0;
          s_off = 0; s_rank = -1; s_next_ticket = 0; s_left = 0 })
  in
  let dynamic_queue = Deque.create ~capacity:16 () in
  let ready = Minheap.create cfg.processors in
  let ticket_waiter = Array.make (max 1 trace.Trace.p_max_tickets) (-1) in
  let idle = Array.make cfg.processors false in
  Array.iteri
    (fun epoch_no (epoch : Trace.pepoch) ->
      let tasks = epoch.Trace.p_tasks in
      let ntasks = Array.length tasks in
      let n_tickets = epoch.Trace.p_n_tickets in
      Array.iter
        (fun p ->
          p.s_clock <- !global;
          Deque.clear p.s_pending;
          p.s_idx <- 0;
          p.s_stop <- 0;
          p.s_end <- 0;
          p.s_off <- 0;
          p.s_rank <- -1;
          p.s_next_ticket <- 0;
          p.s_left <- 0)
        procs;
      Deque.clear dynamic_queue;
      Minheap.clear ready;
      Array.fill ticket_waiter 0 (Array.length ticket_waiter) (-1);
      Array.fill idle 0 (Array.length idle) false;
      (* task distribution *)
      (match epoch.Trace.p_kind with
      | Trace.Serial ->
        for rank = 0 to ntasks - 1 do
          Deque.push_back procs.(0).s_pending (w_item ~rank ~start:0)
        done
      | Trace.Parallel _ ->
        if Schedule.is_static cfg then
          for rank = 0 to ntasks - 1 do
            let p = Schedule.static_proc cfg ~ntasks rank in
            Deque.push_back procs.(p).s_pending (w_item ~rank ~start:0)
          done
        else
          for rank = 0 to ntasks - 1 do
            Deque.push_back dynamic_queue (w_item ~rank ~start:0)
          done);
      (* critical-section tickets *)
      let expected_ticket = ref 0 in
      let lock_release = ref 0 in
      let parallel =
        match epoch.Trace.p_kind with Trace.Parallel _ -> true | Trace.Serial -> false
      in
      let start_task p ~dynamic w =
        let rank = w_rank w and start = w_start w in
        let t = tasks.(rank) in
        p.s_off <- t.Trace.off;
        p.s_idx <- t.Trace.off + start;
        p.s_end <- t.Trace.off + t.Trace.len;
        p.s_stop <- p.s_end;
        p.s_rank <- rank;
        p.s_next_ticket <- t.Trace.ticket0;
        p.s_left <- t.Trace.n_locks;
        if start > 0 then
          (* resuming migrated work: reload task state on the new node *)
          p.s_clock <- p.s_clock + (2 * cfg.lock_cycles);
        (* decide here whether this task will migrate away mid-execution;
           lock-holding tasks never migrate *)
        if
          dynamic && parallel && start = 0 && t.Trace.n_locks = 0 && t.Trace.len > 1
          && cfg.migration_rate > 0.0
          && Hscd_util.Prng.float prng < cfg.migration_rate
        then p.s_stop <- p.s_off + 1 + Hscd_util.Prng.int prng (t.Trace.len - 1)
      in
      (* advance to the next task with events left; empty tasks are skipped *)
      let rec try_refill p =
        if p.s_idx < p.s_stop then true
        else begin
          (* migrating away: the unexecuted tail goes back to the shared
             queue for another processor to pick up *)
          if p.s_rank >= 0 && p.s_stop < p.s_end then begin
            metrics.migrations <- metrics.migrations + 1;
            Deque.push_back dynamic_queue
              (w_item ~rank:p.s_rank ~start:(p.s_stop - p.s_off))
          end;
          p.s_rank <- -1;
          p.s_end <- 0;
          p.s_stop <- 0;
          match Deque.pop_front p.s_pending with
          | Some t ->
            start_task p ~dynamic:false t;
            try_refill p
          | None -> (
            match Deque.pop_front dynamic_queue with
            | Some t ->
              (* self-scheduling: fetching the shared iteration counter *)
              p.s_clock <- p.s_clock + cfg.lock_cycles;
              start_task p ~dynamic:true t;
              try_refill p
            | None -> false)
        end
      in
      let blocked p =
        (* blocked when the next event is a Lock whose ticket is not yet due *)
        p.s_idx < p.s_stop
        && ops.(p.s_idx) = Event.Code.lock
        && p.s_left > 0
        && p.s_next_ticket <> !expected_ticket
      in
      (* ready structure: min-clock heap of runnable processors; blocked
         processors park in the slot of the ticket they wait for, workless
         processors in the idle set *)
      let enqueue p =
        if blocked p then ticket_waiter.(p.s_next_ticket) <- p.s_pidx
        else Minheap.push ready ~key:p.s_clock p.s_pidx
      in
      (* refill p and put it wherever it now belongs: the heap, a ticket
         slot, or the idle set *)
      let activate p =
        if try_refill p then begin
          idle.(p.s_pidx) <- false;
          enqueue p
        end
        else idle.(p.s_pidx) <- true
      in
      (* a migrated tail landed on an empty queue: idle processors claim
         it in index order, like the linear scan used to *)
      let wake_idle () =
        if not (Deque.is_empty dynamic_queue) then
          Array.iter
            (fun p -> if idle.(p.s_pidx) && not (Deque.is_empty dynamic_queue) then activate p)
            procs
      in
      Array.iter activate procs;
      wake_idle ();
      let rec loop () =
        let pi = Minheap.pop_min ready in
        if pi >= 0 then begin
          let p = procs.(pi) in
          let proc = p.s_pidx in
          let i = p.s_idx in
          let op = ops.(i) in
          if op = Event.Code.compute then begin
            let n = addrs.(i) in
            p.s_clock <- p.s_clock + n;
            metrics.compute_cycles <- metrics.compute_cycles + n
          end
          else if op = Event.Code.read then begin
            let addr = addrs.(i) in
            let r = S.read sch ~proc ~addr ~array:arrs.(i) ~mark:rmark_table.(marks.(i)) in
            p.s_clock <- p.s_clock + r.Scheme.latency;
            Metrics.record_read metrics r;
            if r.Scheme.value <> values.(i) then begin
              if !nviol < max_violations then
                violations :=
                  { epoch = epoch_no; proc; addr; expected = values.(i); got = r.Scheme.value }
                  :: !violations;
              incr nviol
            end
          end
          else if op = Event.Code.write then begin
            let addr = addrs.(i) in
            let r =
              S.write sch ~proc ~addr ~array:arrs.(i) ~value:values.(i)
                ~mark:(Event.Code.wmark_of marks.(i))
            in
            p.s_clock <- p.s_clock + r.Scheme.latency;
            Metrics.record_write metrics r
          end
          else if op = Event.Code.lock then begin
            if p.s_left > 0 then begin
              assert (p.s_next_ticket = !expected_ticket);
              p.s_next_ticket <- p.s_next_ticket + 1;
              p.s_left <- p.s_left - 1
            end;
            let ready_at = max p.s_clock !lock_release in
            metrics.lock_wait_cycles <- metrics.lock_wait_cycles + (ready_at - p.s_clock);
            metrics.lock_acquires <- metrics.lock_acquires + 1;
            p.s_clock <- ready_at + cfg.lock_cycles
          end
          else begin
            (* unlock *)
            lock_release := p.s_clock;
            incr expected_ticket;
            (* unblock the processor waiting on the now-due ticket *)
            if !expected_ticket < n_tickets then begin
              let w = ticket_waiter.(!expected_ticket) in
              if w >= 0 then begin
                ticket_waiter.(!expected_ticket) <- -1;
                Minheap.push ready ~key:procs.(w).s_clock w
              end
            end
          end;
          p.s_idx <- p.s_idx + 1;
          if p.s_idx < p.s_stop then enqueue p
          else begin
            activate p;
            wake_idle ()
          end;
          loop ()
        end
      in
      loop ();
      (* epoch boundary: scheme work, barrier, network-load update *)
      let stalls = S.epoch_boundary sch in
      let finish = ref !global in
      Array.iteri
        (fun i p ->
          let c = p.s_clock + stalls.(i) in
          if c > !finish then finish := c)
        procs;
      metrics.barriers <- metrics.barriers + 1;
      global := !finish + cfg.barrier_cycles;
      Kruskal_snir.set_load net (Traffic.window_load traffic ~now_cycle:!global))
    trace.Trace.p_epochs;
  metrics.cycles <- !global;
  metrics.traffic <- Traffic.snapshot traffic;
  metrics.scheme_stats <- S.stats sch;
  metrics.violations <- !nviol;
  let memory_ok =
    let img = S.memory_image sch in
    let golden = trace.Trace.p_golden in
    Array.length img = Array.length golden
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if golden.(i) <> v then ok := false) img;
    !ok
  in
  {
    cycles = !global;
    metrics;
    violations = List.rev !violations;
    memory_ok;
    network_load = Kruskal_snir.load net;
  }

(* ------------------------------------------------------------------ *)
(* Legacy boxed replay (equivalence baseline)                          *)
(* ------------------------------------------------------------------ *)

type work_item = {
  rank : int;
  w_task : Trace.task;
  start : int;  (** first event index to execute (> 0 for migrated work) *)
  w_tickets : int list;
}

type proc_state = {
  pidx : int;  (** this processor's index — no identity scans *)
  mutable clock : int;
  pending : work_item Deque.t;  (** static assignment *)
  mutable events : Event.t array;  (** current task's events *)
  mutable idx : int;
  mutable stop : int;  (** exclusive bound; < length when migrating away *)
  mutable cur : work_item option;
  mutable tickets : int list;  (** lock tickets of the current task *)
}

let assign_tickets (epoch : Trace.epoch) =
  (* tickets in (rank, event) order so the engine can grant critical
     sections in the golden interpreter's order *)
  let counter = ref 0 in
  let per_task =
    Array.map
      (fun (task : Trace.task) ->
        Array.to_list task.events
        |> List.filter_map (function
             | Event.Lock ->
               let t = !counter in
               incr counter;
               Some t
             | _ -> None))
      epoch.tasks
  in
  (per_task, !counter)

let run_boxed (cfg : Config.t) (Scheme.Packed ((module S), sch)) ~(net : Kruskal_snir.t)
    ~(traffic : Traffic.t) (trace : Trace.t) =
  let metrics = Metrics.create () in
  let violations = ref [] in
  let nviol = ref 0 in
  let global = ref 0 in
  let prng = Hscd_util.Prng.of_int 0x5ca1ab1e in
  (* the boxed stream carries array names; intern them exactly as the
     packed form does so both paths hand schemes identical dense ids *)
  let symtab = Trace.symtab_of_layout trace.Trace.layout in
  Array.iteri
    (fun epoch_no (epoch : Trace.epoch) ->
      let ntasks = Array.length epoch.tasks in
      let tickets, n_tickets = assign_tickets epoch in
      let procs =
        Array.init cfg.processors (fun pidx ->
            { pidx; clock = !global; pending = Deque.create (); events = [||]; idx = 0;
              stop = 0; cur = None; tickets = [] })
      in
      let item rank task = { rank; w_task = task; start = 0; w_tickets = tickets.(rank) } in
      (* task distribution *)
      let dynamic_queue = Deque.create ~capacity:(max 1 ntasks) () in
      (match epoch.kind with
      | Trace.Serial ->
        Array.iteri (fun rank task -> Deque.push_back procs.(0).pending (item rank task)) epoch.tasks
      | Trace.Parallel _ ->
        if Schedule.is_static cfg then
          Array.iteri
            (fun rank task ->
              let p = Schedule.static_proc cfg ~ntasks rank in
              Deque.push_back procs.(p).pending (item rank task))
            epoch.tasks
        else Array.iteri (fun rank task -> Deque.push_back dynamic_queue (item rank task)) epoch.tasks);
      (* critical-section tickets *)
      let expected_ticket = ref 0 in
      let lock_release = ref 0 in
      let parallel = match epoch.kind with Trace.Parallel _ -> true | Trace.Serial -> false in
      let start_task p ~dynamic (w : work_item) =
        p.events <- w.w_task.events;
        p.idx <- w.start;
        p.cur <- Some w;
        p.tickets <- w.w_tickets;
        let len = Array.length p.events in
        p.stop <- len;
        if w.start > 0 then
          (* resuming migrated work: reload task state on the new node *)
          p.clock <- p.clock + (2 * cfg.lock_cycles);
        (* decide here whether this task will migrate away mid-execution;
           lock-holding tasks never migrate *)
        if
          dynamic && parallel && w.start = 0 && w.w_tickets = [] && len > 1
          && cfg.migration_rate > 0.0
          && Hscd_util.Prng.float prng < cfg.migration_rate
        then p.stop <- 1 + Hscd_util.Prng.int prng (len - 1)
      in
      (* advance to the next task with events left; empty tasks are skipped *)
      let rec try_refill p =
        if p.idx < p.stop then true
        else begin
          (* migrating away: the unexecuted tail goes back to the shared
             queue for another processor to pick up *)
          (match p.cur with
          | Some w when p.stop < Array.length p.events ->
            metrics.migrations <- metrics.migrations + 1;
            Deque.push_back dynamic_queue { w with start = p.stop }
          | _ -> ());
          p.cur <- None;
          match Deque.pop_front p.pending with
          | Some t ->
            start_task p ~dynamic:false t;
            try_refill p
          | None -> (
            match Deque.pop_front dynamic_queue with
            | Some t ->
              (* self-scheduling: fetching the shared iteration counter *)
              p.clock <- p.clock + cfg.lock_cycles;
              start_task p ~dynamic:true t;
              try_refill p
            | None -> false)
        end
      in
      let blocked p =
        (* blocked when the next event is a Lock whose ticket is not yet due *)
        p.idx < p.stop
        &&
        match p.events.(p.idx) with
        | Event.Lock -> ( match p.tickets with t :: _ -> t <> !expected_ticket | [] -> false)
        | _ -> false
      in
      (* ready structure: min-clock heap of runnable processors; blocked
         processors park in the slot of the ticket they wait for, workless
         processors in the idle set *)
      let ready = Minheap.create cfg.processors in
      let ticket_waiter = Array.make (max 1 n_tickets) (-1) in
      let idle = Array.make cfg.processors false in
      let enqueue p =
        if blocked p then ticket_waiter.(List.hd p.tickets) <- p.pidx
        else Minheap.push ready ~key:p.clock p.pidx
      in
      (* refill p and put it wherever it now belongs: the heap, a ticket
         slot, or the idle set *)
      let activate p =
        if try_refill p then begin
          idle.(p.pidx) <- false;
          enqueue p
        end
        else idle.(p.pidx) <- true
      in
      (* a migrated tail landed on an empty queue: idle processors claim
         it in index order, like the linear scan used to *)
      let wake_idle () =
        if not (Deque.is_empty dynamic_queue) then
          Array.iter (fun p -> if idle.(p.pidx) && not (Deque.is_empty dynamic_queue) then activate p) procs
      in
      Array.iter activate procs;
      wake_idle ();
      let rec loop () =
        match Minheap.pop ready with
        | None -> ()
        | Some (_, pi) ->
          let p = procs.(pi) in
          let proc = p.pidx in
          (match p.events.(p.idx) with
          | Event.Compute n ->
            p.clock <- p.clock + n;
            metrics.compute_cycles <- metrics.compute_cycles + n
          | Event.Read { addr; mark; value; array } ->
            let r = S.read sch ~proc ~addr ~array:(Symtab.intern symtab array) ~mark in
            p.clock <- p.clock + r.Scheme.latency;
            Metrics.record_read metrics r;
            if r.Scheme.value <> value then begin
              if !nviol < max_violations then
                violations :=
                  { epoch = epoch_no; proc; addr; expected = value; got = r.Scheme.value }
                  :: !violations;
              incr nviol
            end
          | Event.Write { addr; mark; value; array } ->
            let r = S.write sch ~proc ~addr ~array:(Symtab.intern symtab array) ~value ~mark in
            p.clock <- p.clock + r.Scheme.latency;
            Metrics.record_write metrics r
          | Event.Lock ->
            (match p.tickets with
            | t :: rest ->
              assert (t = !expected_ticket);
              p.tickets <- rest
            | [] -> ());
            let ready_at = max p.clock !lock_release in
            metrics.lock_wait_cycles <- metrics.lock_wait_cycles + (ready_at - p.clock);
            metrics.lock_acquires <- metrics.lock_acquires + 1;
            p.clock <- ready_at + cfg.lock_cycles
          | Event.Unlock ->
            lock_release := p.clock;
            incr expected_ticket;
            (* unblock the processor waiting on the now-due ticket *)
            if !expected_ticket < n_tickets then begin
              let w = ticket_waiter.(!expected_ticket) in
              if w >= 0 then begin
                ticket_waiter.(!expected_ticket) <- -1;
                Minheap.push ready ~key:procs.(w).clock w
              end
            end);
          p.idx <- p.idx + 1;
          if p.idx < p.stop then enqueue p
          else begin
            activate p;
            wake_idle ()
          end;
          loop ()
      in
      loop ();
      (* epoch boundary: scheme work, barrier, network-load update *)
      let stalls = S.epoch_boundary sch in
      let finish = ref !global in
      Array.iteri
        (fun i p ->
          let c = p.clock + stalls.(i) in
          if c > !finish then finish := c)
        procs;
      metrics.barriers <- metrics.barriers + 1;
      global := !finish + cfg.barrier_cycles;
      Kruskal_snir.set_load net (Traffic.window_load traffic ~now_cycle:!global))
    trace.epochs;
  metrics.cycles <- !global;
  metrics.traffic <- Traffic.snapshot traffic;
  metrics.scheme_stats <- S.stats sch;
  metrics.violations <- !nviol;
  let memory_ok =
    let img = S.memory_image sch in
    let golden = trace.golden_memory in
    Array.length img = Array.length golden
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if golden.(i) <> v then ok := false) img;
    !ok
  in
  {
    cycles = !global;
    metrics;
    violations = List.rev !violations;
    memory_ok;
    network_load = Kruskal_snir.load net;
  }
