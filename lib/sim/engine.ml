(** The multiprocessor timing engine.

    Replays a {!Trace.packed} trace against one coherence scheme: DOALL
    tasks are assigned to processors by the configured scheduling policy,
    events are processed in global clock order (a conservative
    discrete-event interleaving, so directory state transitions happen in
    simulated-time order), critical sections are granted in trace order
    via tickets, and every epoch ends with a barrier, the scheme's
    boundary work (two-phase resets, buffer drains) and a network-load
    update for the analytic delay model. Every load's value is checked
    against the golden interpreter — a failing scheme cannot hide.

    The hot path is allocation-free in steady state: events are decoded
    by index from the packed trace's unboxed int slabs (read marks via a
    preallocated decode table, so no [Time_read] cell is ever built),
    schemes fill a reused scratch {!Scheme.access_result}, the ready
    queue pops with {!Minheap.pop_min} (no option/tuple), work items are
    rank+offset encoded in a single int, a task's critical-section
    tickets are a base+count pair instead of a list, and all per-epoch
    scratch (processor states, ticket slots, idle set, heap, deques) is
    allocated once per run and reset across epochs.

    The next processor to run is picked from an indexed ready queue (a
    min-clock binary heap with ties broken on the processor index, the
    same order a linear lowest-clock scan would produce) rather than an
    O(P) scan per event. Processors leave the heap while blocked on a
    critical-section ticket — parked in a per-ticket slot and re-enqueued
    by the matching unlock — or while out of work, and idle processors are
    woken in index order when self-scheduled work reappears (a migrated
    task tail). Work queues are ring-buffer deques, so task distribution
    is O(1) per task instead of a quadratic list append.

    {!run_boxed} replays the legacy boxed event stream through the same
    timing model; it exists so tests can assert the packed path is
    bit-identical to it. *)

module Config = Hscd_arch.Config
module Event = Hscd_arch.Event
module Scheme = Hscd_coherence.Scheme
module Kruskal_snir = Hscd_network.Kruskal_snir
module Traffic = Hscd_network.Traffic
module Deque = Hscd_util.Deque
module Minheap = Hscd_util.Minheap
module Symtab = Hscd_util.Symtab
module Slab = Trace.Slab

type violation = { epoch : int; proc : int; addr : int; expected : int; got : int }

type result = {
  cycles : int;
  metrics : Metrics.t;
  violations : violation list;  (** capped at [max_violations] *)
  memory_ok : bool;  (** final scheme memory equals the golden memory *)
  network_load : float;  (** last estimated utilization *)
}

let max_violations = 10

(* ------------------------------------------------------------------ *)
(* Packed-native replay                                                *)
(* ------------------------------------------------------------------ *)

(* A work item is a task rank plus a resume offset (> 0 for migrated
   tails), packed into one immediate int so the work deques never box. *)
let w_bits = 31
let w_mask = (1 lsl w_bits) - 1
let w_item ~rank ~start = (rank lsl w_bits) lor start
let w_rank w = w lsr w_bits
let w_start w = w land w_mask

type pstate = {
  s_pidx : int;  (** this processor's index — no identity scans *)
  mutable s_clock : int;
  s_pending : int Deque.t;  (** static assignment, encoded work items *)
  mutable s_idx : int;  (** current slot (absolute slab index) *)
  mutable s_stop : int;  (** exclusive bound; < [s_end] when migrating away *)
  mutable s_end : int;  (** absolute end of the current task's slots *)
  mutable s_off : int;  (** current task's first slot *)
  mutable s_rank : int;  (** current task's rank, -1 when none *)
  mutable s_next_ticket : int;  (** next unclaimed ticket of the task *)
  mutable s_left : int;  (** tickets not yet claimed *)
}

let run ?(on_epoch = fun (_ : int) -> ()) (cfg : Config.t) (Scheme.Packed ((module S), sch))
    ~(net : Kruskal_snir.t) ~(traffic : Traffic.t) (trace : Trace.packed) =
  let metrics = Metrics.create () in
  let violations = ref [] in
  let nviol = ref 0 in
  let global = ref 0 in
  let prng = Hscd_util.Prng.of_int 0x5ca1ab1e in
  let ops = trace.Trace.ops in
  let addrs = trace.Trace.addrs in
  let values = trace.Trace.values in
  let marks = trace.Trace.marks in
  let arrs = trace.Trace.arrs in
  let rmark_table = trace.Trace.rmark_table in
  (* scratch allocated once per run, reset across epochs *)
  let procs =
    Array.init cfg.processors (fun s_pidx ->
        { s_pidx; s_clock = 0; s_pending = Deque.create (); s_idx = 0; s_stop = 0; s_end = 0;
          s_off = 0; s_rank = -1; s_next_ticket = 0; s_left = 0 })
  in
  let dynamic_queue = Deque.create ~capacity:16 () in
  let ready = Minheap.create cfg.processors in
  let ticket_waiter = Array.make (max 1 trace.Trace.p_max_tickets) (-1) in
  let idle = Array.make cfg.processors false in
  let stalls = Array.make cfg.processors 0 in
  Array.iteri
    (fun epoch_no (epoch : Trace.pepoch) ->
      on_epoch epoch_no;
      let tasks = epoch.Trace.p_tasks in
      let ntasks = Array.length tasks in
      let n_tickets = epoch.Trace.p_n_tickets in
      Array.iter
        (fun p ->
          p.s_clock <- !global;
          Deque.clear p.s_pending;
          p.s_idx <- 0;
          p.s_stop <- 0;
          p.s_end <- 0;
          p.s_off <- 0;
          p.s_rank <- -1;
          p.s_next_ticket <- 0;
          p.s_left <- 0)
        procs;
      Deque.clear dynamic_queue;
      Minheap.clear ready;
      Array.fill ticket_waiter 0 (Array.length ticket_waiter) (-1);
      Array.fill idle 0 (Array.length idle) false;
      (* task distribution *)
      (match epoch.Trace.p_kind with
      | Trace.Serial ->
        for rank = 0 to ntasks - 1 do
          Deque.push_back procs.(0).s_pending (w_item ~rank ~start:0)
        done
      | Trace.Parallel _ ->
        if Schedule.is_static cfg then
          for rank = 0 to ntasks - 1 do
            let p = Schedule.static_proc cfg ~ntasks rank in
            Deque.push_back procs.(p).s_pending (w_item ~rank ~start:0)
          done
        else
          for rank = 0 to ntasks - 1 do
            Deque.push_back dynamic_queue (w_item ~rank ~start:0)
          done);
      (* critical-section tickets *)
      let expected_ticket = ref 0 in
      let lock_release = ref 0 in
      let parallel =
        match epoch.Trace.p_kind with Trace.Parallel _ -> true | Trace.Serial -> false
      in
      let start_task p ~dynamic w =
        let rank = w_rank w and start = w_start w in
        let t = tasks.(rank) in
        p.s_off <- t.Trace.off;
        p.s_idx <- t.Trace.off + start;
        p.s_end <- t.Trace.off + t.Trace.len;
        p.s_stop <- p.s_end;
        p.s_rank <- rank;
        p.s_next_ticket <- t.Trace.ticket0;
        p.s_left <- t.Trace.n_locks;
        if start > 0 then
          (* resuming migrated work: reload task state on the new node *)
          p.s_clock <- p.s_clock + (2 * cfg.lock_cycles);
        (* decide here whether this task will migrate away mid-execution;
           lock-holding tasks never migrate *)
        if
          dynamic && parallel && start = 0 && t.Trace.n_locks = 0 && t.Trace.len > 1
          && cfg.migration_rate > 0.0
          && Hscd_util.Prng.float prng < cfg.migration_rate
        then p.s_stop <- p.s_off + 1 + Hscd_util.Prng.int prng (t.Trace.len - 1)
      in
      (* advance to the next task with events left; empty tasks are skipped *)
      let rec try_refill p =
        if p.s_idx < p.s_stop then true
        else begin
          (* migrating away: the unexecuted tail goes back to the shared
             queue for another processor to pick up *)
          if p.s_rank >= 0 && p.s_stop < p.s_end then begin
            metrics.migrations <- metrics.migrations + 1;
            Deque.push_back dynamic_queue
              (w_item ~rank:p.s_rank ~start:(p.s_stop - p.s_off))
          end;
          p.s_rank <- -1;
          p.s_end <- 0;
          p.s_stop <- 0;
          match Deque.pop_front p.s_pending with
          | Some t ->
            start_task p ~dynamic:false t;
            try_refill p
          | None -> (
            match Deque.pop_front dynamic_queue with
            | Some t ->
              (* self-scheduling: fetching the shared iteration counter *)
              p.s_clock <- p.s_clock + cfg.lock_cycles;
              start_task p ~dynamic:true t;
              try_refill p
            | None -> false)
        end
      in
      let blocked p =
        (* blocked when the next event is a Lock whose ticket is not yet due *)
        p.s_idx < p.s_stop
        && Slab.get ops p.s_idx = Event.Code.lock
        && p.s_left > 0
        && p.s_next_ticket <> !expected_ticket
      in
      (* ready structure: min-clock heap of runnable processors; blocked
         processors park in the slot of the ticket they wait for, workless
         processors in the idle set *)
      let enqueue p =
        if blocked p then ticket_waiter.(p.s_next_ticket) <- p.s_pidx
        else Minheap.push ready ~key:p.s_clock p.s_pidx
      in
      (* refill p and put it wherever it now belongs: the heap, a ticket
         slot, or the idle set *)
      let activate p =
        if try_refill p then begin
          idle.(p.s_pidx) <- false;
          enqueue p
        end
        else idle.(p.s_pidx) <- true
      in
      (* a migrated tail landed on an empty queue: idle processors claim
         it in index order, like the linear scan used to *)
      let wake_idle () =
        if not (Deque.is_empty dynamic_queue) then
          Array.iter
            (fun p -> if idle.(p.s_pidx) && not (Deque.is_empty dynamic_queue) then activate p)
            procs
      in
      Array.iter activate procs;
      wake_idle ();
      let rec loop () =
        let pi = Minheap.pop_min ready in
        if pi >= 0 then begin
          let p = procs.(pi) in
          let proc = p.s_pidx in
          let i = p.s_idx in
          let op = Slab.get ops i in
          if op = Event.Code.compute then begin
            let n = Slab.get addrs i in
            p.s_clock <- p.s_clock + n;
            metrics.compute_cycles <- metrics.compute_cycles + n
          end
          else if op = Event.Code.read then begin
            let addr = Slab.get addrs i in
            let r =
              S.read sch ~proc ~addr ~array:(Slab.get arrs i)
                ~mark:rmark_table.(Slab.get marks i)
            in
            p.s_clock <- p.s_clock + r.Scheme.latency;
            Metrics.record_read metrics r;
            let golden = Slab.get values i in
            if r.Scheme.value <> golden then begin
              if !nviol < max_violations then
                violations :=
                  { epoch = epoch_no; proc; addr; expected = golden; got = r.Scheme.value }
                  :: !violations;
              incr nviol
            end
          end
          else if op = Event.Code.write then begin
            let addr = Slab.get addrs i in
            let r =
              S.write sch ~proc ~addr ~array:(Slab.get arrs i) ~value:(Slab.get values i)
                ~mark:(Event.Code.wmark_of (Slab.get marks i))
            in
            p.s_clock <- p.s_clock + r.Scheme.latency;
            Metrics.record_write metrics r
          end
          else if op = Event.Code.lock then begin
            if p.s_left > 0 then begin
              assert (p.s_next_ticket = !expected_ticket);
              p.s_next_ticket <- p.s_next_ticket + 1;
              p.s_left <- p.s_left - 1
            end;
            let ready_at = max p.s_clock !lock_release in
            metrics.lock_wait_cycles <- metrics.lock_wait_cycles + (ready_at - p.s_clock);
            metrics.lock_acquires <- metrics.lock_acquires + 1;
            p.s_clock <- ready_at + cfg.lock_cycles
          end
          else begin
            (* unlock *)
            lock_release := p.s_clock;
            incr expected_ticket;
            (* unblock the processor waiting on the now-due ticket *)
            if !expected_ticket < n_tickets then begin
              let w = ticket_waiter.(!expected_ticket) in
              if w >= 0 then begin
                ticket_waiter.(!expected_ticket) <- -1;
                Minheap.push ready ~key:procs.(w).s_clock w
              end
            end
          end;
          p.s_idx <- p.s_idx + 1;
          if p.s_idx < p.s_stop then enqueue p
          else begin
            activate p;
            wake_idle ()
          end;
          loop ()
        end
      in
      loop ();
      (* epoch boundary: scheme work (into the per-run stall scratch),
         barrier, network-load update *)
      S.epoch_boundary sch ~stalls;
      let finish = ref !global in
      for i = 0 to Array.length procs - 1 do
        let c = procs.(i).s_clock + stalls.(i) in
        if c > !finish then finish := c
      done;
      metrics.barriers <- metrics.barriers + 1;
      global := !finish + cfg.barrier_cycles;
      Kruskal_snir.set_load net (Traffic.window_load traffic ~now_cycle:!global))
    trace.Trace.p_epochs;
  metrics.cycles <- !global;
  metrics.traffic <- Traffic.snapshot traffic;
  metrics.scheme_stats <- S.stats sch;
  metrics.violations <- !nviol;
  let memory_ok =
    let img = S.memory_image sch in
    let golden = trace.Trace.p_golden in
    Array.length img = Array.length golden
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if golden.(i) <> v then ok := false) img;
    !ok
  in
  {
    cycles = !global;
    metrics;
    violations = List.rev !violations;
    memory_ok;
    network_load = Kruskal_snir.load net;
  }

(* ------------------------------------------------------------------ *)
(* Sharded replay: one trace, many domains                             *)
(* ------------------------------------------------------------------ *)

(* The sharded engine partitions a single trace's memory accesses by
   cache-set group ({!Trace.Shard}), replays each shard's slots in trace
   order against a private scheme slice on its own domain, and
   reconstructs the sequential engine's timing at each epoch barrier
   from per-bin latency sums plus a single ticket-chain pass. The replay
   presents every slice its accesses in slot (trace) order — the golden
   interpreter's race-free order — so the result is deterministic and
   identical at every shard count by construction: shard membership only
   decides *which* slice an access updates, never the order of accesses
   within a line's history, and the merge formulas below are sums, maxes
   and a serial chain that cannot observe the partition. *)

type shard_ctx = {
  c_metrics : Metrics.t;
  c_bin_lat : int array;  (** per-bin access latencies of the current epoch *)
  mutable c_viols : (int * violation) list;  (** keyed by slot for a stable global order *)
  mutable c_nviol : int;
}

(* Raised inside a shard worker when a sibling has failed: unwinds this
   worker past its barriers so the team can join instead of deadlocking. *)
exception Shard_abort

(* Per-epoch slice replay. The three copies below (generic, BASE, TPI)
   share this body; the scheme-specific ones call the scheme's functions
   directly so the per-event dispatch is a known call, not an indirection
   through a first-class module. *)
let replay_slice (type st) (module S : Scheme.S with type t = st) (sch : st)
    (trace : Trace.packed) (plan : Trace.Shard.plan) (c : shard_ctx) ~shard ~epoch =
  let ep = plan.Trace.Shard.sh_epochs.(epoch) in
  Array.fill c.c_bin_lat 0 ep.Trace.Shard.sp_nbins 0;
  let slots = plan.Trace.Shard.sh_slots.(shard) in
  let bins = plan.Trace.Shard.sh_bins.(shard) in
  let lo = plan.Trace.Shard.sh_off.(shard).(epoch) in
  let hi = plan.Trace.Shard.sh_off.(shard).(epoch + 1) in
  let ops = trace.Trace.ops in
  let addrs = trace.Trace.addrs in
  let values = trace.Trace.values in
  let marks = trace.Trace.marks in
  let arrs = trace.Trace.arrs in
  let rmark_table = trace.Trace.rmark_table in
  let bin_lat = c.c_bin_lat in
  let metrics = c.c_metrics in
  for j = lo to hi - 1 do
    let i = Slab.get slots j in
    let b = Slab.get bins j in
    let proc = ep.Trace.Shard.sp_bin_proc.(b) in
    let addr = Slab.get addrs i in
    if Slab.get ops i = Event.Code.read then begin
      let r =
        S.read sch ~proc ~addr ~array:(Slab.get arrs i)
          ~mark:rmark_table.(Slab.get marks i)
      in
      bin_lat.(b) <- bin_lat.(b) + r.Scheme.latency;
      Metrics.record_read metrics r;
      let golden = Slab.get values i in
      if r.Scheme.value <> golden then begin
        if c.c_nviol < max_violations then
          c.c_viols <-
            (i, { epoch; proc; addr; expected = golden; got = r.Scheme.value }) :: c.c_viols;
        c.c_nviol <- c.c_nviol + 1
      end
    end
    else begin
      let r =
        S.write sch ~proc ~addr ~array:(Slab.get arrs i) ~value:(Slab.get values i)
          ~mark:(Event.Code.wmark_of (Slab.get marks i))
      in
      bin_lat.(b) <- bin_lat.(b) + r.Scheme.latency;
      Metrics.record_write metrics r
    end
  done

let replay_slice_base (sch : Hscd_coherence.Base.t) (trace : Trace.packed)
    (plan : Trace.Shard.plan) (c : shard_ctx) ~shard ~epoch =
  let module B = Hscd_coherence.Base in
  let ep = plan.Trace.Shard.sh_epochs.(epoch) in
  Array.fill c.c_bin_lat 0 ep.Trace.Shard.sp_nbins 0;
  let slots = plan.Trace.Shard.sh_slots.(shard) in
  let bins = plan.Trace.Shard.sh_bins.(shard) in
  let lo = plan.Trace.Shard.sh_off.(shard).(epoch) in
  let hi = plan.Trace.Shard.sh_off.(shard).(epoch + 1) in
  let ops = trace.Trace.ops in
  let addrs = trace.Trace.addrs in
  let values = trace.Trace.values in
  let marks = trace.Trace.marks in
  let arrs = trace.Trace.arrs in
  let rmark_table = trace.Trace.rmark_table in
  let bin_lat = c.c_bin_lat in
  let metrics = c.c_metrics in
  for j = lo to hi - 1 do
    let i = Slab.get slots j in
    let b = Slab.get bins j in
    let proc = ep.Trace.Shard.sp_bin_proc.(b) in
    let addr = Slab.get addrs i in
    if Slab.get ops i = Event.Code.read then begin
      let r =
        B.read sch ~proc ~addr ~array:(Slab.get arrs i) ~mark:rmark_table.(Slab.get marks i)
      in
      bin_lat.(b) <- bin_lat.(b) + r.Scheme.latency;
      Metrics.record_read metrics r;
      let golden = Slab.get values i in
      if r.Scheme.value <> golden then begin
        if c.c_nviol < max_violations then
          c.c_viols <-
            (i, { epoch; proc; addr; expected = golden; got = r.Scheme.value }) :: c.c_viols;
        c.c_nviol <- c.c_nviol + 1
      end
    end
    else begin
      let r =
        B.write sch ~proc ~addr ~array:(Slab.get arrs i) ~value:(Slab.get values i)
          ~mark:(Event.Code.wmark_of (Slab.get marks i))
      in
      bin_lat.(b) <- bin_lat.(b) + r.Scheme.latency;
      Metrics.record_write metrics r
    end
  done

let replay_slice_tpi (sch : Hscd_coherence.Tpi.t) (trace : Trace.packed)
    (plan : Trace.Shard.plan) (c : shard_ctx) ~shard ~epoch =
  let module T = Hscd_coherence.Tpi in
  let ep = plan.Trace.Shard.sh_epochs.(epoch) in
  Array.fill c.c_bin_lat 0 ep.Trace.Shard.sp_nbins 0;
  let slots = plan.Trace.Shard.sh_slots.(shard) in
  let bins = plan.Trace.Shard.sh_bins.(shard) in
  let lo = plan.Trace.Shard.sh_off.(shard).(epoch) in
  let hi = plan.Trace.Shard.sh_off.(shard).(epoch + 1) in
  let ops = trace.Trace.ops in
  let addrs = trace.Trace.addrs in
  let values = trace.Trace.values in
  let marks = trace.Trace.marks in
  let arrs = trace.Trace.arrs in
  let rmark_table = trace.Trace.rmark_table in
  let bin_lat = c.c_bin_lat in
  let metrics = c.c_metrics in
  for j = lo to hi - 1 do
    let i = Slab.get slots j in
    let b = Slab.get bins j in
    let proc = ep.Trace.Shard.sp_bin_proc.(b) in
    let addr = Slab.get addrs i in
    if Slab.get ops i = Event.Code.read then begin
      let r =
        T.read sch ~proc ~addr ~array:(Slab.get arrs i) ~mark:rmark_table.(Slab.get marks i)
      in
      bin_lat.(b) <- bin_lat.(b) + r.Scheme.latency;
      Metrics.record_read metrics r;
      let golden = Slab.get values i in
      if r.Scheme.value <> golden then begin
        if c.c_nviol < max_violations then
          c.c_viols <-
            (i, { epoch; proc; addr; expected = golden; got = r.Scheme.value }) :: c.c_viols;
        c.c_nviol <- c.c_nviol + 1
      end
    end
    else begin
      let r =
        T.write sch ~proc ~addr ~array:(Slab.get arrs i) ~value:(Slab.get values i)
          ~mark:(Event.Code.wmark_of (Slab.get marks i))
      in
      bin_lat.(b) <- bin_lat.(b) + r.Scheme.latency;
      Metrics.record_write metrics r
    end
  done

(* Everything the shard driver needs from a scheme, pre-applied to one
   concrete slice type so BASE and TPI can plug in monomorphic replay
   loops while the other schemes go through the generic one. *)
type 'st shard_ops = {
  o_create : memory_words:int -> network:Kruskal_snir.t -> traffic:Traffic.t -> 'st;
  o_replay :
    'st -> Trace.packed -> Trace.Shard.plan -> shard_ctx -> shard:int -> epoch:int -> unit;
  o_exchange : 'st array -> unit;
  o_boundary : 'st -> stalls:int array -> unit;
  o_stats : 'st -> Scheme.stats;
  o_image : 'st -> int array;
}

let run_sharded_with (type st) ?(parallel = true) (cfg : Config.t) (ops : st shard_ops)
    ~shards (trace : Trace.packed) : result =
  let plan = Trace.Shard.build cfg ~shards trace in
  let memory_words = Trace.packed_memory_words trace in
  let nets = Array.init shards (fun _ -> Kruskal_snir.create cfg) in
  let traffics = Array.init shards (fun _ -> Traffic.create cfg) in
  let slices =
    Array.init shards (fun s ->
        ops.o_create ~memory_words ~network:nets.(s) ~traffic:traffics.(s))
  in
  let ctxs =
    Array.init shards (fun _ ->
        { c_metrics = Metrics.create ();
          c_bin_lat = Array.make plan.Trace.Shard.sh_max_bins 0;
          c_viols = [];
          c_nviol = 0 })
  in
  let procs = cfg.processors in
  let n_eps = Array.length trace.Trace.p_epochs in
  let stalls = Array.make_matrix shards procs 0 in
  (* merged timing state, only ever touched single-threaded: in the
     caller on the sequential path, by the last barrier arriver on the
     parallel one *)
  let global = ref 0 in
  let clock = Array.make procs 0 in
  let cursor = Array.make procs 0 in
  let lock_wait = ref 0 in
  let lock_acq = ref 0 in
  let compute = ref 0 in
  let n_barriers = ref 0 in
  let window_words = ref 0 in
  let window_cycle = ref 0 in
  (* Reconstruct the sequential engine's epoch timing. Each processor
     enters the epoch having executed its first cost bin; every ticket in
     global order then replays Lock (wait on the previous release, pay
     lock_cycles), the critical-section bin, Unlock (publish the release
     time) and the following open bin — exactly the coupling the
     min-clock engine resolves event by event. *)
  let merge_epoch e =
    let ep = plan.Trace.Shard.sh_epochs.(e) in
    let cost b =
      let c = ref ep.Trace.Shard.sp_bin_static.(b) in
      for s = 0 to shards - 1 do
        c := !c + ctxs.(s).c_bin_lat.(b)
      done;
      !c
    in
    for p = 0 to procs - 1 do
      cursor.(p) <- ep.Trace.Shard.sp_proc_bin0.(p);
      clock.(p) <- !global + cost cursor.(p)
    done;
    let release = ref 0 in
    Array.iter
      (fun pr ->
        let ready = max clock.(pr) !release in
        lock_wait := !lock_wait + (ready - clock.(pr));
        incr lock_acq;
        let after_cs = ready + cfg.lock_cycles + cost (cursor.(pr) + 1) in
        release := after_cs;
        clock.(pr) <- after_cs + cost (cursor.(pr) + 2);
        cursor.(pr) <- cursor.(pr) + 2)
      ep.Trace.Shard.sp_ticket_proc;
    compute := !compute + ep.Trace.Shard.sp_compute_total;
    let finish = ref !global in
    for p = 0 to procs - 1 do
      let smax = ref 0 in
      for s = 0 to shards - 1 do
        if stalls.(s).(p) > !smax then smax := stalls.(s).(p)
      done;
      let c = clock.(p) + !smax in
      if c > !finish then finish := c
    done;
    incr n_barriers;
    global := !finish + cfg.barrier_cycles;
    (* one shared interconnect: offered load over the epoch window is
       computed from the summed raw word counts with a single division —
       summing per-slice [window_load] results instead would drift from
       the sequential engine in the last float bit and break the
       shard-count bit-identity gate. Every slice's network model sees
       the same total. *)
    let words = ref 0 in
    for s = 0 to shards - 1 do
      words := !words + Traffic.total_words traffics.(s)
    done;
    let cycles = max 1 (!global - !window_cycle) in
    let rho =
      float_of_int (!words - !window_words) /. float_of_int (cycles * cfg.processors)
    in
    window_words := !words;
    window_cycle := !global;
    for s = 0 to shards - 1 do
      Kruskal_snir.set_load nets.(s) rho
    done
  in
  let epoch_step_tail e s =
    (* each slice fills its own row of the reusable stall matrix in place *)
    ops.o_boundary slices.(s) ~stalls:stalls.(s);
    ignore e
  in
  let run_parallel () =
    let first_error = Atomic.make None in
    let failed = Atomic.make false in
    let bar_count = Atomic.make 0 in
    let bar_sense = Atomic.make 0 in
    (* sense-reversing barrier; the last arriver runs [action]. A raise
       anywhere poisons the barrier so nobody spins forever. *)
    let barrier action =
      let sense = Atomic.get bar_sense in
      if 1 + Atomic.fetch_and_add bar_count 1 = shards then begin
        (try action ()
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set first_error None (Some (e, bt)));
           Atomic.set failed true);
        Atomic.set bar_count 0;
        Atomic.set bar_sense (1 - sense)
      end
      else begin
        let spins = ref 0 in
        while Atomic.get bar_sense = sense && not (Atomic.get failed) do
          incr spins;
          if !spins land 4095 = 0 then Unix.sleepf 0.0001 else Domain.cpu_relax ()
        done
      end;
      if Atomic.get failed then raise Shard_abort
    in
    let worker s =
      try
        for e = 0 to n_eps - 1 do
          ops.o_replay slices.(s) trace plan ctxs.(s) ~shard:s ~epoch:e;
          barrier (fun () -> ops.o_exchange slices);
          epoch_step_tail e s;
          barrier (fun () -> merge_epoch e)
        done
      with
      | Shard_abort -> ()
      | e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set first_error None (Some (e, bt)));
        Atomic.set failed true
    in
    match Hscd_util.Pool.team ~members:shards worker with
    | None -> false
    | Some _ ->
      (match Atomic.get first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      true
  in
  let run_sequential () =
    for e = 0 to n_eps - 1 do
      for s = 0 to shards - 1 do
        ops.o_replay slices.(s) trace plan ctxs.(s) ~shard:s ~epoch:e
      done;
      ops.o_exchange slices;
      for s = 0 to shards - 1 do
        epoch_step_tail e s
      done;
      merge_epoch e
    done
  in
  (* The parallel path interleaves only operations on disjoint slices
     between barriers, so its state evolution is identical to the
     sequential one — which therefore doubles as the fallback when the
     team cannot be spawned. *)
  if not (parallel && shards > 1 && run_parallel ()) then run_sequential ();
  (* merge: counters are sums over slices, stalls maxes, violations the
     globally first [max_violations] in slot order *)
  let metrics = Metrics.create () in
  Array.iter
    (fun c ->
      let m = c.c_metrics in
      for k = 0 to Metrics.n_classes - 1 do
        metrics.read_classes.(k) <- metrics.read_classes.(k) + m.read_classes.(k);
        metrics.write_classes.(k) <- metrics.write_classes.(k) + m.write_classes.(k)
      done;
      metrics.read_miss_count <- metrics.read_miss_count + m.read_miss_count;
      metrics.read_miss_cycles <- metrics.read_miss_cycles + m.read_miss_cycles)
    ctxs;
  metrics.compute_cycles <- !compute;
  metrics.barriers <- !n_barriers;
  metrics.lock_acquires <- !lock_acq;
  metrics.lock_wait_cycles <- !lock_wait;
  metrics.cycles <- !global;
  metrics.traffic <-
    Array.fold_left
      (fun acc t ->
        let s = Traffic.snapshot t in
        { Traffic.reads = acc.Traffic.reads + s.Traffic.reads;
          writes = acc.Traffic.writes + s.Traffic.writes;
          coherence = acc.Traffic.coherence + s.Traffic.coherence;
          control = acc.Traffic.control + s.Traffic.control })
      { Traffic.reads = 0; writes = 0; coherence = 0; control = 0 }
      traffics;
  let st = Scheme.fresh_stats () in
  Array.iter
    (fun sl ->
      let x = ops.o_stats sl in
      st.Scheme.invalidations_sent <- st.Scheme.invalidations_sent + x.Scheme.invalidations_sent;
      st.Scheme.dirty_recalls <- st.Scheme.dirty_recalls + x.Scheme.dirty_recalls;
      st.Scheme.upgrades <- st.Scheme.upgrades + x.Scheme.upgrades;
      st.Scheme.writebacks <- st.Scheme.writebacks + x.Scheme.writebacks;
      (* every slice's epoch counter trips the same resets *)
      if x.Scheme.two_phase_resets > st.Scheme.two_phase_resets then
        st.Scheme.two_phase_resets <- x.Scheme.two_phase_resets)
    slices;
  metrics.scheme_stats <- st;
  metrics.violations <- Array.fold_left (fun a c -> a + c.c_nviol) 0 ctxs;
  let violations =
    (* each slice keeps its first [max_violations] in slot order, so the
       union's smallest slots are complete: a globally-early violation is
       necessarily early within its own shard *)
    let all = Array.fold_left (fun acc c -> List.rev_append c.c_viols acc) [] ctxs in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) all in
    List.filteri (fun k _ -> k < max_violations) sorted |> List.map snd
  in
  let golden = trace.Trace.p_golden in
  let images = Array.map ops.o_image slices in
  let memory_ok =
    Array.for_all (fun img -> Array.length img = Array.length golden) images
    &&
    let ok = ref true in
    Array.iteri
      (fun i g ->
        if images.(Trace.Shard.shard_of_addr cfg ~shards i).(i) <> g then ok := false)
      golden;
    !ok
  in
  {
    cycles = !global;
    metrics;
    violations;
    memory_ok;
    network_load = (if shards > 0 then Kruskal_snir.load nets.(0) else 0.0);
  }

let run_sharded ?parallel (cfg : Config.t) (m : (module Hscd_coherence.Scheme.S)) ~shards
    trace =
  let (module S) = m in
  run_sharded_with ?parallel cfg
    { o_create = S.create cfg;
      o_replay = (fun sch -> replay_slice (module S) sch);
      o_exchange = S.boundary_exchange;
      o_boundary = S.epoch_boundary;
      o_stats = S.stats;
      o_image = S.memory_image }
    ~shards trace

let run_sharded_base ?parallel (cfg : Config.t) ~shards trace =
  let module B = Hscd_coherence.Base in
  run_sharded_with ?parallel cfg
    { o_create = B.create cfg;
      o_replay = replay_slice_base;
      o_exchange = B.boundary_exchange;
      o_boundary = B.epoch_boundary;
      o_stats = B.stats;
      o_image = B.memory_image }
    ~shards trace

let run_sharded_tpi ?parallel (cfg : Config.t) ~shards trace =
  let module T = Hscd_coherence.Tpi in
  run_sharded_with ?parallel cfg
    { o_create = T.create cfg;
      o_replay = replay_slice_tpi;
      o_exchange = T.boundary_exchange;
      o_boundary = T.epoch_boundary;
      o_stats = T.stats;
      o_image = T.memory_image }
    ~shards trace

(* ------------------------------------------------------------------ *)
(* Legacy boxed replay (equivalence baseline)                          *)
(* ------------------------------------------------------------------ *)

type work_item = {
  rank : int;
  w_task : Trace.task;
  start : int;  (** first event index to execute (> 0 for migrated work) *)
  w_tickets : int list;
}

type proc_state = {
  pidx : int;  (** this processor's index — no identity scans *)
  mutable clock : int;
  pending : work_item Deque.t;  (** static assignment *)
  mutable events : Event.t array;  (** current task's events *)
  mutable idx : int;
  mutable stop : int;  (** exclusive bound; < length when migrating away *)
  mutable cur : work_item option;
  mutable tickets : int list;  (** lock tickets of the current task *)
}

let assign_tickets (epoch : Trace.epoch) =
  (* tickets in (rank, event) order so the engine can grant critical
     sections in the golden interpreter's order *)
  let counter = ref 0 in
  let per_task =
    Array.map
      (fun (task : Trace.task) ->
        Array.to_list task.events
        |> List.filter_map (function
             | Event.Lock ->
               let t = !counter in
               incr counter;
               Some t
             | _ -> None))
      epoch.tasks
  in
  (per_task, !counter)

let run_boxed (cfg : Config.t) (Scheme.Packed ((module S), sch)) ~(net : Kruskal_snir.t)
    ~(traffic : Traffic.t) (trace : Trace.t) =
  let metrics = Metrics.create () in
  let violations = ref [] in
  let nviol = ref 0 in
  let global = ref 0 in
  let prng = Hscd_util.Prng.of_int 0x5ca1ab1e in
  (* the boxed stream carries array names; intern them exactly as the
     packed form does so both paths hand schemes identical dense ids *)
  let symtab = Trace.symtab_of_layout trace.Trace.layout in
  let stalls = Array.make cfg.processors 0 in
  Array.iteri
    (fun epoch_no (epoch : Trace.epoch) ->
      let ntasks = Array.length epoch.tasks in
      let tickets, n_tickets = assign_tickets epoch in
      let procs =
        Array.init cfg.processors (fun pidx ->
            { pidx; clock = !global; pending = Deque.create (); events = [||]; idx = 0;
              stop = 0; cur = None; tickets = [] })
      in
      let item rank task = { rank; w_task = task; start = 0; w_tickets = tickets.(rank) } in
      (* task distribution *)
      let dynamic_queue = Deque.create ~capacity:(max 1 ntasks) () in
      (match epoch.kind with
      | Trace.Serial ->
        Array.iteri (fun rank task -> Deque.push_back procs.(0).pending (item rank task)) epoch.tasks
      | Trace.Parallel _ ->
        if Schedule.is_static cfg then
          Array.iteri
            (fun rank task ->
              let p = Schedule.static_proc cfg ~ntasks rank in
              Deque.push_back procs.(p).pending (item rank task))
            epoch.tasks
        else Array.iteri (fun rank task -> Deque.push_back dynamic_queue (item rank task)) epoch.tasks);
      (* critical-section tickets *)
      let expected_ticket = ref 0 in
      let lock_release = ref 0 in
      let parallel = match epoch.kind with Trace.Parallel _ -> true | Trace.Serial -> false in
      let start_task p ~dynamic (w : work_item) =
        p.events <- w.w_task.events;
        p.idx <- w.start;
        p.cur <- Some w;
        p.tickets <- w.w_tickets;
        let len = Array.length p.events in
        p.stop <- len;
        if w.start > 0 then
          (* resuming migrated work: reload task state on the new node *)
          p.clock <- p.clock + (2 * cfg.lock_cycles);
        (* decide here whether this task will migrate away mid-execution;
           lock-holding tasks never migrate *)
        if
          dynamic && parallel && w.start = 0 && w.w_tickets = [] && len > 1
          && cfg.migration_rate > 0.0
          && Hscd_util.Prng.float prng < cfg.migration_rate
        then p.stop <- 1 + Hscd_util.Prng.int prng (len - 1)
      in
      (* advance to the next task with events left; empty tasks are skipped *)
      let rec try_refill p =
        if p.idx < p.stop then true
        else begin
          (* migrating away: the unexecuted tail goes back to the shared
             queue for another processor to pick up *)
          (match p.cur with
          | Some w when p.stop < Array.length p.events ->
            metrics.migrations <- metrics.migrations + 1;
            Deque.push_back dynamic_queue { w with start = p.stop }
          | _ -> ());
          p.cur <- None;
          match Deque.pop_front p.pending with
          | Some t ->
            start_task p ~dynamic:false t;
            try_refill p
          | None -> (
            match Deque.pop_front dynamic_queue with
            | Some t ->
              (* self-scheduling: fetching the shared iteration counter *)
              p.clock <- p.clock + cfg.lock_cycles;
              start_task p ~dynamic:true t;
              try_refill p
            | None -> false)
        end
      in
      let blocked p =
        (* blocked when the next event is a Lock whose ticket is not yet due *)
        p.idx < p.stop
        &&
        match p.events.(p.idx) with
        | Event.Lock -> ( match p.tickets with t :: _ -> t <> !expected_ticket | [] -> false)
        | _ -> false
      in
      (* ready structure: min-clock heap of runnable processors; blocked
         processors park in the slot of the ticket they wait for, workless
         processors in the idle set *)
      let ready = Minheap.create cfg.processors in
      let ticket_waiter = Array.make (max 1 n_tickets) (-1) in
      let idle = Array.make cfg.processors false in
      let enqueue p =
        if blocked p then ticket_waiter.(List.hd p.tickets) <- p.pidx
        else Minheap.push ready ~key:p.clock p.pidx
      in
      (* refill p and put it wherever it now belongs: the heap, a ticket
         slot, or the idle set *)
      let activate p =
        if try_refill p then begin
          idle.(p.pidx) <- false;
          enqueue p
        end
        else idle.(p.pidx) <- true
      in
      (* a migrated tail landed on an empty queue: idle processors claim
         it in index order, like the linear scan used to *)
      let wake_idle () =
        if not (Deque.is_empty dynamic_queue) then
          Array.iter (fun p -> if idle.(p.pidx) && not (Deque.is_empty dynamic_queue) then activate p) procs
      in
      Array.iter activate procs;
      wake_idle ();
      let rec loop () =
        match Minheap.pop ready with
        | None -> ()
        | Some (_, pi) ->
          let p = procs.(pi) in
          let proc = p.pidx in
          (match p.events.(p.idx) with
          | Event.Compute n ->
            p.clock <- p.clock + n;
            metrics.compute_cycles <- metrics.compute_cycles + n
          | Event.Read { addr; mark; value; array } ->
            let r = S.read sch ~proc ~addr ~array:(Symtab.intern symtab array) ~mark in
            p.clock <- p.clock + r.Scheme.latency;
            Metrics.record_read metrics r;
            if r.Scheme.value <> value then begin
              if !nviol < max_violations then
                violations :=
                  { epoch = epoch_no; proc; addr; expected = value; got = r.Scheme.value }
                  :: !violations;
              incr nviol
            end
          | Event.Write { addr; mark; value; array } ->
            let r = S.write sch ~proc ~addr ~array:(Symtab.intern symtab array) ~value ~mark in
            p.clock <- p.clock + r.Scheme.latency;
            Metrics.record_write metrics r
          | Event.Lock ->
            (match p.tickets with
            | t :: rest ->
              assert (t = !expected_ticket);
              p.tickets <- rest
            | [] -> ());
            let ready_at = max p.clock !lock_release in
            metrics.lock_wait_cycles <- metrics.lock_wait_cycles + (ready_at - p.clock);
            metrics.lock_acquires <- metrics.lock_acquires + 1;
            p.clock <- ready_at + cfg.lock_cycles
          | Event.Unlock ->
            lock_release := p.clock;
            incr expected_ticket;
            (* unblock the processor waiting on the now-due ticket *)
            if !expected_ticket < n_tickets then begin
              let w = ticket_waiter.(!expected_ticket) in
              if w >= 0 then begin
                ticket_waiter.(!expected_ticket) <- -1;
                Minheap.push ready ~key:procs.(w).clock w
              end
            end);
          p.idx <- p.idx + 1;
          if p.idx < p.stop then enqueue p
          else begin
            activate p;
            wake_idle ()
          end;
          loop ()
      in
      loop ();
      (* epoch boundary: scheme work (into the per-run stall scratch),
         barrier, network-load update *)
      S.epoch_boundary sch ~stalls;
      let finish = ref !global in
      for i = 0 to Array.length procs - 1 do
        let c = procs.(i).clock + stalls.(i) in
        if c > !finish then finish := c
      done;
      metrics.barriers <- metrics.barriers + 1;
      global := !finish + cfg.barrier_cycles;
      Kruskal_snir.set_load net (Traffic.window_load traffic ~now_cycle:!global))
    trace.epochs;
  metrics.cycles <- !global;
  metrics.traffic <- Traffic.snapshot traffic;
  metrics.scheme_stats <- S.stats sch;
  metrics.violations <- !nviol;
  let memory_ok =
    let img = S.memory_image sch in
    let golden = trace.golden_memory in
    Array.length img = Array.length golden
    &&
    let ok = ref true in
    Array.iteri (fun i v -> if golden.(i) <> v then ok := false) img;
    !ok
  in
  {
    cycles = !global;
    metrics;
    violations = List.rev !violations;
    memory_ok;
    network_load = Kruskal_snir.load net;
  }
