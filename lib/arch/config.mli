(** Machine configuration; defaults reproduce the paper's Figure 8
    (16-processor Cray-T3D-like machine, 64 KB direct-mapped caches,
    4-word lines, 100-cycle base miss, 8-bit timetags, 128-cycle two-phase
    reset, analytic multistage network, weak consistency). *)

type scheduling =
  | Block  (** iteration space split into contiguous per-processor chunks *)
  | Cyclic  (** iteration [r] on processor [r mod p] *)
  | Dynamic  (** self-scheduling: next free processor takes the next task *)

val scheduling_name : scheduling -> string

type write_buffer =
  | Plain_buffer
  | Write_cache of int  (** entries; coalesces redundant writes *)

type consistency =
  | Weak  (** writes retire through buffers; only reads stall (default) *)
  | Sequential  (** every write stalls for its full memory/coherence latency *)

val consistency_name : consistency -> string

type t = {
  processors : int;
  cache_bytes : int;
  line_words : int;
  word_bytes : int;
  assoc : int;  (** 1 = direct-mapped *)
  timetag_bits : int;
  hit_cycles : int;
  miss_base_cycles : int;  (** unloaded base latency of a remote line fetch *)
  word_transfer_cycles : int;  (** per additional word of a line transfer *)
  two_phase_reset_cycles : int;
  barrier_cycles : int;  (** epoch-boundary synchronization cost *)
  lock_cycles : int;  (** acquiring an uncontended lock *)
  switch_degree : int;  (** k of the k×k switches of the multistage network *)
  scheduling : scheduling;
  write_buffer : write_buffer;
  consistency : consistency;
  migration_rate : float;
      (** probability that a dynamically-scheduled task migrates to another
          processor mid-execution (Section 5; requires [Dynamic]) *)
  tpi_eager_reset : bool;
      (** model TPI's two-phase reset as the paper's eager flash-invalidate
          scan instead of the default lazy (Tardis-style) timetag-cutoff
          check — observably identical, kept as a differential oracle *)
}

val default : t

(** Check invariants (power-of-two geometry, tag width, migration policy);
    raises [Invalid_argument] with a specific message, else returns [t]. *)
val validate : t -> t

val cache_words : t -> int
val cache_lines : t -> int
val sets : t -> int
val line_bytes : t -> int

(** Epochs per timetag phase: [2^(bits-1)]. *)
val phase_epochs : t -> int

(** Stages of the multistage interconnection network. *)
val network_stages : t -> int

(** Human-readable parameter table (the Figure 8 experiment). *)
val describe : t -> (string * string) list
