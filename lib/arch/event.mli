(** Memory events: the interface between the language/compiler front half
    and the cache/coherence back half. *)

type rmark = Unmarked | Normal_read | Time_read of int | Bypass_read
type wmark = Normal_write | Bypass_write

type t =
  | Compute of int  (** pure computation: that many CPU cycles *)
  | Read of { addr : int; mark : rmark; value : int; array : string }
      (** [value] is the golden (sequentially consistent) value the read
          must observe; the engine checks every scheme against it *)
  | Write of { addr : int; mark : wmark; value : int; array : string }
  | Lock  (** acquire the global critical-section lock *)
  | Unlock

val of_ast_rmark : Hscd_lang.Ast.rmark -> rmark
val of_ast_wmark : Hscd_lang.Ast.wmark -> wmark

val is_memory_access : t -> bool
val to_string : t -> string

(** Integer encodings for the packed (structure-of-arrays) trace form. *)
module Code : sig
  val compute : int
  val read : int
  val write : int
  val lock : int
  val unlock : int

  (** Read-mark codes: 0 Unmarked, 1 Normal, 2 Bypass, [rmark_base + d] for
      [Time_read d]. *)
  val rmark_base : int

  val of_rmark : rmark -> int
  val rmark_of : int -> rmark

  (** Preallocated decode table for codes [0 .. max_code] (at least the
      three non-Time marks), so the replay loop never constructs a
      [Time_read] cell. *)
  val rmark_table : max_code:int -> rmark array

  val of_wmark : wmark -> int
  val wmark_of : int -> wmark

  (** Allocation-free AST-mark -> code conversions for the streaming trace
      builder (no intermediate {!rmark}/{!wmark} cell). *)
  val of_ast_rmark : Hscd_lang.Ast.rmark -> int

  val of_ast_wmark : Hscd_lang.Ast.wmark -> int
end
