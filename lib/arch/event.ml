(** Memory events produced by instrumented execution and consumed by the
    multiprocessor timing engine — the interface between the front half
    (language + compiler) and the back half (caches + coherence). *)

type rmark = Unmarked | Normal_read | Time_read of int | Bypass_read
type wmark = Normal_write | Bypass_write

type t =
  | Compute of int  (** pure computation: that many CPU cycles *)
  | Read of { addr : int; mark : rmark; value : int; array : string }
      (** [value] is the golden (sequentially consistent) value the read
          must observe; the engine checks every scheme against it *)
  | Write of { addr : int; mark : wmark; value : int; array : string }
  | Lock  (** acquire the global critical-section lock *)
  | Unlock

let of_ast_rmark : Hscd_lang.Ast.rmark -> rmark = function
  | Hscd_lang.Ast.Unmarked -> Unmarked
  | Hscd_lang.Ast.Normal_read -> Normal_read
  | Hscd_lang.Ast.Time_read d -> Time_read d
  | Hscd_lang.Ast.Bypass_read -> Bypass_read

let of_ast_wmark : Hscd_lang.Ast.wmark -> wmark = function
  | Hscd_lang.Ast.Normal_write -> Normal_write
  | Hscd_lang.Ast.Bypass_write -> Bypass_write

let is_memory_access = function Read _ | Write _ -> true | Compute _ | Lock | Unlock -> false

(** Integer encodings for the packed (structure-of-arrays) trace form:
    one opcode plus one mark code per event, so the replay hot path decodes
    events from unboxed [int array]s without constructing variants. *)
module Code = struct
  (* opcodes *)
  let compute = 0
  let read = 1
  let write = 2
  let lock = 3
  let unlock = 4

  (* read-mark codes: the Time-Read distance rides in the code itself *)
  let rmark_base = 3

  let of_rmark = function
    | Unmarked -> 0
    | Normal_read -> 1
    | Bypass_read -> 2
    | Time_read d ->
      if d < 0 then invalid_arg "Event.Code: negative Time_read distance";
      rmark_base + d

  let rmark_of = function
    | 0 -> Unmarked
    | 1 -> Normal_read
    | 2 -> Bypass_read
    | c -> Time_read (c - rmark_base)

  (** Decode table covering codes [0 .. max_code]: replay looks marks up by
      index so no [Time_read] cell is ever constructed in the hot loop. *)
  let rmark_table ~max_code = Array.init (max 3 max_code + 1) rmark_of

  (* write-mark codes (the mark slot is interpreted per opcode) *)
  let of_wmark = function Normal_write -> 0 | Bypass_write -> 1
  let wmark_of = function 0 -> Normal_write | _ -> Bypass_write

  (* straight AST-mark -> code conversions for the streaming trace builder:
     going through [of_ast_rmark] would allocate a fresh [Time_read] cell
     per marked read in the generation hot path *)
  let of_ast_rmark : Hscd_lang.Ast.rmark -> int = function
    | Hscd_lang.Ast.Unmarked -> 0
    | Hscd_lang.Ast.Normal_read -> 1
    | Hscd_lang.Ast.Bypass_read -> 2
    | Hscd_lang.Ast.Time_read d ->
      if d < 0 then invalid_arg "Event.Code: negative Time_read distance";
      rmark_base + d

  let of_ast_wmark : Hscd_lang.Ast.wmark -> int = function
    | Hscd_lang.Ast.Normal_write -> 0
    | Hscd_lang.Ast.Bypass_write -> 1
end

let to_string = function
  | Compute n -> Printf.sprintf "compute %d" n
  | Read { addr; mark; value; array } ->
    let m = match mark with
      | Unmarked -> "" | Normal_read -> "/N" | Time_read d -> Printf.sprintf "/T%d" d
      | Bypass_read -> "/B"
    in
    Printf.sprintf "read %s@%d%s=%d" array addr m value
  | Write { addr; mark; value; array } ->
    let m = match mark with Normal_write -> "" | Bypass_write -> "/B" in
    Printf.sprintf "write %s@%d%s=%d" array addr m value
  | Lock -> "lock"
  | Unlock -> "unlock"
