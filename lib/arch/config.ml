(** Machine configuration.

    Defaults reproduce Figure 8 of the paper: a 16-processor Cray-T3D-like
    machine with single-issue CPUs (1-cycle ALU), 64 KB direct-mapped
    lock-up-free data caches with 4-word (32-bit) lines, 1-cycle hits,
    100-cycle base miss latency, an analytic multistage network [24],
    8-bit timetags and a 128-cycle two-phase reset. *)

type scheduling =
  | Block  (** iteration space split into contiguous per-processor chunks *)
  | Cyclic  (** iteration [r] on processor [r mod p] *)
  | Dynamic  (** self-scheduling: next free processor takes the next task *)

let scheduling_name = function Block -> "block" | Cyclic -> "cyclic" | Dynamic -> "dynamic"

type write_buffer = Plain_buffer | Write_cache of int  (** entries; coalesces redundant writes *)

type consistency =
  | Weak  (** writes retire through buffers; only reads stall (default) *)
  | Sequential  (** every write stalls for its full memory/coherence latency *)

let consistency_name = function Weak -> "weak" | Sequential -> "sequential"

type t = {
  processors : int;
  cache_bytes : int;
  line_words : int;
  word_bytes : int;
  assoc : int;  (** 1 = direct-mapped *)
  timetag_bits : int;
  hit_cycles : int;
  miss_base_cycles : int;  (** unloaded base latency of a remote line fetch *)
  word_transfer_cycles : int;  (** per additional word of a line transfer *)
  two_phase_reset_cycles : int;
  barrier_cycles : int;  (** epoch-boundary synchronization cost *)
  lock_cycles : int;  (** acquiring an uncontended lock *)
  switch_degree : int;  (** k of the k×k switches of the multistage network *)
  scheduling : scheduling;
  write_buffer : write_buffer;
  consistency : consistency;
  migration_rate : float;
      (** probability that a dynamically-scheduled task migrates to another
          processor mid-execution (Section 5; requires [Dynamic]) *)
  tpi_eager_reset : bool;
      (** model TPI's two-phase reset as the paper's eager flash-invalidate
          scan instead of the default lazy (Tardis-style) timetag-cutoff
          check — observably identical, kept as a differential oracle *)
}

let default =
  {
    processors = 16;
    cache_bytes = 64 * 1024;
    line_words = 4;
    word_bytes = 4;
    assoc = 1;
    timetag_bits = 8;
    hit_cycles = 1;
    miss_base_cycles = 100;
    word_transfer_cycles = 12;
    two_phase_reset_cycles = 128;
    barrier_cycles = 50;
    lock_cycles = 20;
    switch_degree = 4;
    scheduling = Block;
    write_buffer = Plain_buffer;
    consistency = Weak;
    migration_rate = 0.0;
    tpi_eager_reset = false;
  }

let validate t =
  let open Hscd_util.Ints in
  if t.processors <= 0 then invalid_arg "Config: processors must be positive";
  if not (is_pow2 t.line_words) then invalid_arg "Config: line_words must be a power of two";
  if not (is_pow2 (t.cache_bytes / t.word_bytes)) then
    invalid_arg "Config: cache size in words must be a power of two";
  if t.assoc < 1 then invalid_arg "Config: associativity must be >= 1";
  if t.timetag_bits < 2 || t.timetag_bits > 30 then
    invalid_arg "Config: timetag_bits out of [2,30]";
  if t.switch_degree < 2 then invalid_arg "Config: switch_degree must be >= 2";
  if t.migration_rate < 0.0 || t.migration_rate > 1.0 then
    invalid_arg "Config: migration_rate out of [0,1]";
  if t.migration_rate > 0.0 && t.scheduling <> Dynamic then
    invalid_arg "Config: task migration requires dynamic scheduling";
  t

let cache_words t = t.cache_bytes / t.word_bytes
let cache_lines t = cache_words t / t.line_words
let sets t = cache_lines t / t.assoc
let line_bytes t = t.line_words * t.word_bytes

(** Epochs per timetag phase: tags live [2^(bits-1)] epochs before the
    two-phase reset recycles them. *)
let phase_epochs t = 1 lsl (t.timetag_bits - 1)

(** Stages of the multistage interconnection network. *)
let network_stages t =
  let rec stages n acc = if n >= t.processors then acc else stages (n * t.switch_degree) (acc + 1) in
  max 1 (stages 1 0)

let describe t =
  [
    ("processors", string_of_int t.processors);
    ("cache", Printf.sprintf "%d KB, %d-way, %d-word lines" (t.cache_bytes / 1024) t.assoc t.line_words);
    ("cache hit", Printf.sprintf "%d cycle" t.hit_cycles);
    ("base miss latency", Printf.sprintf "%d cycles" t.miss_base_cycles);
    ("word transfer", Printf.sprintf "%d cycles/word" t.word_transfer_cycles);
    ("timetag", Printf.sprintf "%d bits" t.timetag_bits);
    ("two-phase reset", Printf.sprintf "%d cycles" t.two_phase_reset_cycles);
    ("network", Printf.sprintf "%d-stage multistage, %dx%d switches (analytic model)"
       (network_stages t) t.switch_degree t.switch_degree);
    ("scheduling", scheduling_name t.scheduling);
    ("write buffer", match t.write_buffer with
      | Plain_buffer -> "infinite plain buffer"
      | Write_cache n -> Printf.sprintf "%d-entry write cache" n);
    ("consistency", consistency_name t.consistency);
  ]
