let default_jobs () =
  match Sys.getenv_opt "HSCD_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* Fast path: lock-free slot map. Every task always runs; outcomes are *)
(* collected per slot, so one crash never discards siblings' work.     *)
(* ------------------------------------------------------------------ *)

type 'b slot = Empty | Ok_slot of 'b | Exn_slot of exn * Printexc.raw_backtrace

let raw_map ?(jobs = 1) f xs : 'b slot array =
  let input = Array.of_list xs in
  let n = Array.length input in
  let out = Array.make n Empty in
  let run i =
    out.(i) <-
      (match f input.(i) with
      | v -> Ok_slot v
      | exception e -> Exn_slot (e, Printexc.get_raw_backtrace ()))
  in
  if jobs <= 1 || n <= 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false else run i
      done
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned
  end;
  out

module For_testing = struct
  let fail_next_spawns = Atomic.make 0
end

let try_spawn fn =
  if Atomic.get For_testing.fail_next_spawns > 0 then begin
    ignore (Atomic.fetch_and_add For_testing.fail_next_spawns (-1));
    None
  end
  else match Domain.spawn fn with d -> Some d | exception _ -> None

(* ------------------------------------------------------------------ *)
(* Barrier team: [members] workers that are all guaranteed to be live  *)
(* at once (caller included), so they may rendezvous at barriers — a   *)
(* guarantee the queue-based pools above deliberately do not make (one *)
(* domain may run several tasks back to back). Used by the sharded     *)
(* replay engine, which synchronizes shards at every epoch boundary.   *)
(* ------------------------------------------------------------------ *)

let team ~members (f : int -> 'a) : 'a array option =
  if members <= 0 then invalid_arg "Pool.team: members must be >= 1";
  if members = 1 then Some [| f 0 |]
  else begin
    (* 0 = hold, 1 = run, -1 = abort (a sibling failed to spawn) *)
    let go = Atomic.make 0 in
    let slots : 'a slot array = Array.make members Empty in
    let run w =
      slots.(w) <-
        (match f w with
        | v -> Ok_slot v
        | exception e -> Exn_slot (e, Printexc.get_raw_backtrace ()))
    in
    let member w () =
      while Atomic.get go = 0 do
        Domain.cpu_relax ()
      done;
      if Atomic.get go > 0 then run w
    in
    let domains = Array.make (members - 1) None in
    let ok = ref true in
    for w = 1 to members - 1 do
      if !ok then
        match try_spawn (member w) with
        | Some d -> domains.(w - 1) <- Some d
        | None -> ok := false
    done;
    if not !ok then begin
      (* a partial team would deadlock at its first barrier: release the
         members that did spawn without running anything, and decline *)
      Atomic.set go (-1);
      Array.iter (function Some d -> Domain.join d | None -> ()) domains;
      None
    end
    else begin
      Atomic.set go 1;
      run 0;
      Array.iter (function Some d -> Domain.join d | None -> ()) domains;
      Array.iter
        (function Exn_slot (e, bt) -> Printexc.raise_with_backtrace e bt | _ -> ())
        slots;
      Some (Array.map (function Ok_slot v -> v | Empty | Exn_slot _ -> assert false) slots)
    end
  end

let error_of_task_exn e bt =
  let t = Hscd_error.of_exn ~default:Hscd_error.Worker e in
  { t with Hscd_error.backtrace = Some (Printexc.raw_backtrace_to_string bt) }

let map ?jobs f xs =
  raw_map ?jobs f xs |> Array.to_list
  |> List.map (function
       | Ok_slot v -> Ok v
       | Exn_slot (e, bt) -> Result.Error (error_of_task_exn e bt)
       | Empty -> assert false)

let map_exn ?jobs f xs =
  raw_map ?jobs f xs |> Array.to_list
  |> List.map (function
       | Ok_slot v -> v
       | Exn_slot (e, bt) -> Printexc.raise_with_backtrace e bt
       | Empty -> assert false)

let iter ?jobs f xs = ignore (map_exn ?jobs f xs)

(* ------------------------------------------------------------------ *)
(* Supervised pool.                                                    *)
(*                                                                     *)
(* Workers take task indices from a shared queue and report raw        *)
(* completions; every policy decision — retry scheduling, backoff,     *)
(* deadlines, cancellation, respawn, degradation — is made by the      *)
(* supervisor (the calling domain), which polls a few hundred times a  *)
(* second. Centralizing policy in one domain keeps the workers dumb    *)
(* and the state transitions race-free: only the supervisor ever       *)
(* touches the outcome slots.                                          *)
(*                                                                     *)
(* A task attempt that blows its deadline marks its worker as lost:    *)
(* domains cannot be killed, so the hung domain is abandoned (never    *)
(* joined) and a replacement is spawned, up to [max_respawns]. If a    *)
(* lost worker was merely slow and eventually finishes, it rejoins the *)
(* pool as a bonus worker and its late result is discarded if the      *)
(* task was already resolved elsewhere — harmless when [f] is pure.    *)
(* When no live workers remain (or no domain can be spawned at all),   *)
(* the supervisor finishes the remaining tasks itself, sequentially.   *)
(* ------------------------------------------------------------------ *)

type 'b outcome = Done of 'b | Failed of Hscd_error.t | Timed_out of float

type policy = {
  deadline : float option;
  retries : int;
  backoff : float;
  keep_going : bool;
  max_respawns : int;
}

let default_policy =
  { deadline = None; retries = 2; backoff = 0.05; keep_going = true; max_respawns = 4 }

type stats = { retried : int; timeouts : int; respawns : int; degraded : bool }

let task_context i = Printf.sprintf "task %d" i

let supervise ?(jobs = 1) ?(policy = default_policy) ?(on_done = fun _ _ -> ()) f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let out = Array.make n (Failed (Hscd_error.make Hscd_error.Internal "unresolved task slot")) in
  let resolved = Array.make n false in
  let attempts = Array.make n 0 in
  let n_resolved = ref 0 in
  let cancelled = ref false in
  let retried = ref 0 and timeouts = ref 0 and respawns = ref 0 and degraded = ref false in
  let stats () =
    { retried = !retried; timeouts = !timeouts; respawns = !respawns; degraded = !degraded }
  in
  let cancel_error i =
    Hscd_error.make ~context:[ task_context i ] Hscd_error.Worker
      "cancelled (fail-fast policy after a sibling's failure)"
  in
  let task_error i e bt = Hscd_error.add_context (task_context i) (error_of_task_exn e bt) in
  (* In-caller completion of every unresolved task, input order. Used for
     jobs<=1 and as the degradation target; deadlines cannot be enforced
     here (there is nothing to interrupt a task with), retries can. *)
  let seq_complete () =
    for i = 0 to n - 1 do
      if not resolved.(i) then begin
        let oc =
          if !cancelled then Failed (cancel_error i)
          else begin
            let rec attempt () =
              attempts.(i) <- attempts.(i) + 1;
              match f input.(i) with
              | v -> Done v
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                if attempts.(i) < 1 + policy.retries then begin
                  incr retried;
                  if policy.backoff > 0. then
                    Unix.sleepf (policy.backoff *. float_of_int attempts.(i));
                  attempt ()
                end
                else Failed (task_error i e bt)
            in
            attempt ()
          end
        in
        out.(i) <- oc;
        resolved.(i) <- true;
        incr n_resolved;
        (match oc with Failed _ when not policy.keep_going -> cancelled := true | _ -> ());
        on_done i oc
      end
    done
  in
  if n = 0 then ([], stats ())
  else if jobs <= 1 then begin
    seq_complete ();
    (Array.to_list out, stats ())
  end
  else begin
    let m = Mutex.create () in
    let work_cv = Condition.create () in
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i queue
    done;
    let completions : (int * ('b, exn * Printexc.raw_backtrace) result) Queue.t =
      Queue.create ()
    in
    let retry_later = ref [] in
    let stop = ref false in
    let n_workers = min jobs n in
    let cap = n_workers + policy.max_respawns in
    let running = Array.make cap None in
    let lost = Array.make cap false in
    let domains = Array.make cap None in
    let worker w () =
      let continue = ref true in
      while !continue do
        Mutex.lock m;
        while Queue.is_empty queue && not !stop do
          Condition.wait work_cv m
        done;
        if !stop && Queue.is_empty queue then begin
          Mutex.unlock m;
          continue := false
        end
        else begin
          let i = Queue.pop queue in
          attempts.(i) <- attempts.(i) + 1;
          running.(w) <- Some (i, Unix.gettimeofday ());
          Mutex.unlock m;
          let r =
            match f input.(i) with
            | v -> Ok v
            | exception e -> Result.Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock m;
          running.(w) <- None;
          Queue.add (i, r) completions;
          Mutex.unlock m
        end
      done
    in
    let live = ref 0 in
    let next_slot = ref 0 in
    for _ = 1 to n_workers do
      let w = !next_slot in
      match try_spawn (worker w) with
      | Some d ->
        incr next_slot;
        domains.(w) <- Some d;
        incr live
      | None -> ()
    done;
    if !live = 0 then begin
      (* domain spawn is broken: run the whole batch in the caller *)
      degraded := true;
      seq_complete ();
      (Array.to_list out, stats ())
    end
    else begin
      (* on_done fires outside the lock (it does journal I/O) *)
      let pending_done = ref [] in
      let resolve i oc =
        out.(i) <- oc;
        resolved.(i) <- true;
        incr n_resolved;
        pending_done := (i, oc) :: !pending_done;
        match oc with
        | Failed _ | Timed_out _ when not policy.keep_going ->
          if not !cancelled then begin
            cancelled := true;
            (* unstarted siblings resolve immediately; running ones finish *)
            Queue.iter
              (fun j ->
                if not resolved.(j) then begin
                  out.(j) <- Failed (cancel_error j);
                  resolved.(j) <- true;
                  incr n_resolved;
                  pending_done := (j, out.(j)) :: !pending_done
                end)
              queue;
            Queue.clear queue;
            List.iter
              (fun (_, j) ->
                if not resolved.(j) then begin
                  out.(j) <- Failed (cancel_error j);
                  resolved.(j) <- true;
                  incr n_resolved;
                  pending_done := (j, out.(j)) :: !pending_done
                end)
              !retry_later;
            retry_later := []
          end
        | _ -> ()
      in
      let schedule_retry now i =
        incr retried;
        retry_later := (now +. (policy.backoff *. float_of_int attempts.(i)), i) :: !retry_later
      in
      while !n_resolved < n do
        Mutex.lock m;
        let now = Unix.gettimeofday () in
        (* completions: resolve, or schedule a retry for crashed attempts *)
        while not (Queue.is_empty completions) do
          let i, r = Queue.pop completions in
          if not resolved.(i) then
            match r with
            | Ok v -> resolve i (Done v)
            | Result.Error (e, bt) ->
              if (not !cancelled) && attempts.(i) < 1 + policy.retries then schedule_retry now i
              else resolve i (Failed (task_error i e bt))
        done;
        (* due retries re-enter the work queue *)
        let due, later = List.partition (fun (t, _) -> t <= now) !retry_later in
        retry_later := later;
        List.iter
          (fun (_, i) ->
            if not resolved.(i) then begin
              Queue.add i queue;
              Condition.signal work_cv
            end)
          due;
        (* deadlines: a blown attempt loses its worker (domains cannot be
           interrupted); the task retries or resolves as Timed_out *)
        (match policy.deadline with
        | None -> ()
        | Some dl ->
          for w = 0 to !next_slot - 1 do
            if not lost.(w) then
              match running.(w) with
              | Some (i, t0) when now -. t0 > dl ->
                incr timeouts;
                lost.(w) <- true;
                decr live;
                if not resolved.(i) then begin
                  if (not !cancelled) && attempts.(i) < 1 + policy.retries then
                    schedule_retry now i
                  else resolve i (Timed_out (now -. t0))
                end;
                if !next_slot < cap && !respawns < policy.max_respawns then begin
                  let w' = !next_slot in
                  match try_spawn (worker w') with
                  | Some d ->
                    incr next_slot;
                    domains.(w') <- Some d;
                    incr respawns;
                    incr live
                  | None -> ()
                end
              | _ -> ()
          done);
        let all_done = !n_resolved >= n in
        let stalled = (not all_done) && !live <= 0 in
        if all_done || stalled then begin
          stop := true;
          if stalled then Queue.clear queue;
          Condition.broadcast work_cv
        end;
        Mutex.unlock m;
        List.iter (fun (i, oc) -> on_done i oc) (List.rev !pending_done);
        pending_done := [];
        if stalled then begin
          (* every worker is lost or failed to spawn: finish in the caller *)
          degraded := true;
          seq_complete ()
        end
        else if not all_done then Unix.sleepf 0.002
      done;
      Mutex.lock m;
      stop := true;
      Condition.broadcast work_cv;
      Mutex.unlock m;
      (* join live workers; lost (possibly hung) domains are abandoned *)
      for w = 0 to !next_slot - 1 do
        match domains.(w) with Some d when not lost.(w) -> Domain.join d | _ -> ()
      done;
      (Array.to_list out, stats ())
    end
  end
