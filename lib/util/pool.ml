let default_jobs () =
  match Sys.getenv_opt "HSCD_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

type 'b slot = Empty | Ok_slot of 'b | Exn_slot of exn * Printexc.raw_backtrace

let map ?(jobs = 1) f xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          out.(i) <-
            (match f input.(i) with
            | v -> Ok_slot v
            | exception e -> Exn_slot (e, Printexc.get_raw_backtrace ()))
      done
    in
    let spawned = Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    Array.to_list out
    |> List.map (function
         | Ok_slot v -> v
         | Exn_slot (e, bt) -> Printexc.raise_with_backtrace e bt
         | Empty -> assert false)
  end

let iter ?jobs f xs = ignore (map ?jobs f xs)
