(** Symbol interning: a bijection between strings and dense integer ids.

    The packed trace representation stores array names as small ints so the
    replay hot path never touches a string; ids are assigned in first-intern
    order, densely from 0, so they index plain arrays (e.g. the VC scheme's
    per-array version registers). *)

type t

(** Fresh empty table. [capacity] is a size hint. *)
val create : ?capacity:int -> unit -> t

(** Id of [name], interning it (next dense id) when unseen. *)
val intern : t -> string -> int

(** Id of an already-interned [name]; raises [Invalid_argument] when
    unknown. *)
val id : t -> string -> int

val find_opt : t -> string -> int option

val mem : t -> string -> bool

(** Name of id [i]; raises [Invalid_argument] when out of range. *)
val name : t -> int -> string

(** Number of interned symbols (ids are [0 .. length - 1]). *)
val length : t -> int

(** Table pre-seeded with [names] in order (ids 0, 1, ...); duplicates
    collapse to the first occurrence. *)
val of_names : string list -> t

(** All names in id order. *)
val names : t -> string array
