(* Symbol interning: strings <-> dense ids, first-intern order. *)

type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable n : int;
}

let create ?(capacity = 16) () =
  { by_name = Hashtbl.create (max 1 capacity); by_id = [||]; n = 0 }

let length t = t.n

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None ->
    let i = t.n in
    if i >= Array.length t.by_id then begin
      let cap = max 8 (2 * Array.length t.by_id) in
      let fresh = Array.make cap "" in
      Array.blit t.by_id 0 fresh 0 t.n;
      t.by_id <- fresh
    end;
    t.by_id.(i) <- name;
    t.n <- t.n + 1;
    Hashtbl.replace t.by_name name i;
    i

let find_opt t name = Hashtbl.find_opt t.by_name name

let mem t name = Hashtbl.mem t.by_name name

let id t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Symtab: unknown symbol %s" name)

let name t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Symtab: id %d out of [0,%d)" i t.n)
  else t.by_id.(i)

let of_names names =
  let t = create ~capacity:(List.length names) () in
  List.iter (fun n -> ignore (intern t n)) names;
  t

let names t = Array.sub t.by_id 0 t.n
