(** Growable ring-buffer FIFO with amortized O(1) push/pop at both ends.

    The engine's work queues (per-processor pending lists and the shared
    self-scheduling queue) were list appends — O(n) per push, quadratic per
    epoch. This deque replaces them. Not thread-safe: each simulation run
    owns its queues. *)

type 'a t

(** Fresh empty deque; [capacity] is a size hint. *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

(** [None] when empty. *)
val pop_front : 'a t -> 'a option

val pop_back : 'a t -> 'a option

(** Front element without removing it. *)
val peek_front : 'a t -> 'a option

val clear : 'a t -> unit

(** Front-to-back order. *)
val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t
