(* Array-based binary min-heap over (key, value) pairs, ordered by key
   then value. The engine uses it as the ready queue: key = processor
   clock, value = processor index, so ties resolve to the lowest index —
   the same tie-break as a linear lowest-clock scan. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable size : int;
}

let create capacity =
  let cap = max 1 capacity in
  { keys = Array.make cap 0; vals = Array.make cap 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let less t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.vals.(i) < t.vals.(j))

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && less t l i then l else i in
  let m = if r < t.size && less t r m then r else m in
  if m <> i then begin
    swap t i m;
    sift_down t m
  end

let push t ~key v =
  if t.size = Array.length t.keys then begin
    let cap = 2 * Array.length t.keys in
    let keys = Array.make cap 0 and vals = Array.make cap 0 in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.vals <- vals
  end;
  t.keys.(t.size) <- key;
  t.vals.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

(* Allocation-free pop for the engine's per-event loop: the minimum
   element's value, or -1 when empty (values are processor indices >= 0). *)
let pop_min t =
  if t.size = 0 then -1
  else begin
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    v
  end

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) in
    let v = pop_min t in
    Some (key, v)
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let clear t = t.size <- 0
