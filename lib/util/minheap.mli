(** Binary min-heap over [(key, value)] integer pairs, ordered by key and
    breaking ties on the smaller value.

    The engine's ready queue: key is a processor clock, value a processor
    index, so [pop] yields the lowest-clock processor and resolves clock
    ties to the lowest index — identical ordering to a linear scan over
    processors, at O(log n) per operation. *)

type t

val create : int -> t

val length : t -> int
val is_empty : t -> bool

val push : t -> key:int -> int -> unit

(** Smallest [(key, value)]; [None] when empty. *)
val pop : t -> (int * int) option

(** Value of the smallest pair, or [-1] when empty — the allocation-free
    pop for hot loops whose values are non-negative (processor indices). *)
val pop_min : t -> int

val peek : t -> (int * int) option

val clear : t -> unit
