type kind =
  | Usage
  | Parse
  | Io
  | Corrupt
  | Worker
  | Timeout
  | Check
  | Internal
  | Busy
  | Rejected

type t = {
  kind : kind;
  message : string;
  context : string list;
  backtrace : string option;
}

let kind_name = function
  | Usage -> "usage"
  | Parse -> "parse"
  | Io -> "io"
  | Corrupt -> "corrupt"
  | Worker -> "worker"
  | Timeout -> "timeout"
  | Check -> "check"
  | Internal -> "internal"
  | Busy -> "busy"
  | Rejected -> "rejected"

exception Error of t

let make ?(context = []) ?backtrace kind message = { kind; message; context; backtrace }

let fail ?context kind fmt =
  Printf.ksprintf (fun message -> raise (Error (make ?context kind message))) fmt

let error ?context kind fmt =
  Printf.ksprintf (fun message -> Result.Error (make ?context kind message)) fmt
let add_context frame t = { t with context = t.context @ [ frame ] }

let backtrace_now () =
  match Printexc.get_backtrace () with "" -> None | bt -> Some bt

(* Pre-typed exceptions keep their classification; stdlib exceptions are
   mapped by what they mean, not where they were raised. *)
let of_exn ?(default = Internal) exn =
  match exn with
  | Error t -> t
  | Failure m -> { kind = default; message = m; context = []; backtrace = backtrace_now () }
  | Sys_error m -> { kind = Io; message = m; context = []; backtrace = backtrace_now () }
  | Invalid_argument m ->
    { kind = Internal; message = m; context = []; backtrace = backtrace_now () }
  | Out_of_memory | Stack_overflow ->
    {
      kind = Internal;
      message = Printexc.to_string exn;
      context = [];
      backtrace = backtrace_now ();
    }
  | exn ->
    {
      kind = default;
      message = Printexc.to_string exn;
      context = [];
      backtrace = backtrace_now ();
    }

let guard ?default ?context f =
  match f () with
  | v -> Ok v
  | exception exn ->
    let t = of_exn ?default exn in
    Result.Error (match context with None -> t | Some c -> add_context c t)

let get_exn = function Ok v -> v | Result.Error t -> raise (Error t)
(* [Busy] is backpressure, not failure: the refused request is valid and
   worth re-offering once the queue drains. [Rejected] is a policy verdict
   (unknown tenant, over quota, invalid job) — retrying cannot help. *)
let transient t = match t.kind with Io | Worker | Timeout | Busy -> true | _ -> false

let exit_code t =
  match t.kind with Usage -> 2 | Internal -> 3 | Busy -> 4 | Rejected -> 5 | _ -> 1

let to_string t =
  let ctx =
    match t.context with [] -> "" | cs -> Printf.sprintf " (in %s)" (String.concat ", in " cs)
  in
  Printf.sprintf "%s: %s%s" (kind_name t.kind) t.message ctx

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* render the payload, not "Hscd_error.Error(_)" *)
let () =
  Printexc.register_printer (function Error t -> Some ("hscd error: " ^ to_string t) | _ -> None)
