(** A small domain pool (OCaml 5 [Domain] + [Atomic], no external deps)
    for embarrassingly parallel fan-out: independent simulations of the
    same trace under different coherence schemes, experiment sweeps and
    the fuzz oracle's cross-scheme check.

    Workers claim list elements through a shared counter, write results
    into a pre-sized slot array, and join before [map] returns, so the
    output order always equals the input order and the result is
    bit-identical to the sequential [List.map] — parallelism never changes
    what is computed, only when. Exceptions raised by [f] are re-raised in
    the caller (the first failing index wins). *)

(** Worker count from the environment: [HSCD_JOBS] if set to a positive
    integer, else [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ~jobs f xs] is [List.map f xs], computed by up to [jobs] domains
    (the caller counts as one). [jobs <= 1] (the default) runs
    sequentially with no domain spawned. [f] must not touch shared mutable
    state. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ~jobs f xs] is [ignore (map ~jobs f xs)]. *)
val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
