(** A small domain pool (OCaml 5 [Domain] + [Atomic], no external deps)
    for embarrassingly parallel fan-out: independent simulations of the
    same trace under different coherence schemes, experiment sweeps and
    the fuzz oracle's cross-scheme check.

    Two layers:

    - {!map} / {!map_exn} / {!iter}: the lock-free fast path. Workers
      claim list elements through a shared counter and write results into
      a pre-sized slot array; output order equals input order, so the
      result is bit-identical to the sequential [List.map] — parallelism
      never changes what is computed, only when. {!map} runs {e every}
      task and surfaces each outcome as a [result] (one worker's crash
      never discards completed siblings' work); {!map_exn} is the
      fail-fast shim that re-raises the first failure after the join.

    - {!supervise}: the supervised pool for long, crash-tolerant sweeps.
      Per-task outcome slots (done / failed / timed out), a per-task
      deadline, bounded retry with backoff for transient failures,
      keep-going vs fail-fast policy, worker respawn and graceful
      degradation to in-caller sequential execution when domains cannot
      be spawned or workers keep getting lost. Partial results are always
      returned: a task's failure is data, not an abort. *)

(** Worker count from the environment: [HSCD_JOBS] if set to a positive
    integer, else [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ~jobs f xs] runs [f] over every element of [xs] on up to [jobs]
    domains (the caller counts as one) and returns one outcome per
    element, in input order: [Ok y], or [Error e] when that task raised
    (classified by {!Hscd_error.of_exn} with default kind [Worker]).
    Every task runs regardless of sibling failures. [jobs <= 1] (the
    default) runs sequentially with no domain spawned. [f] must not
    touch shared mutable state. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, Hscd_error.t) result list

(** Fail-fast shim over {!map}: returns the plain values, re-raising the
    first failing task's original exception (with its backtrace) after
    all workers have joined. *)
val map_exn : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [iter ~jobs f xs] is [ignore (map_exn ~jobs f xs)]. *)
val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

(** [team ~members f] runs [f 0 .. f (members-1)] with {e every} member
    live on its own domain simultaneously (the caller is member [0]), so
    the members may rendezvous at barriers — which {!map}'s shared-queue
    model must not promise (one domain can run several tasks back to
    back). Returns [None] without calling [f] at all when the full team
    cannot be spawned (the caller then falls back to a sequential path);
    [Some results] in member order otherwise. If a member raises, the
    first failure is re-raised in the caller after all members have
    terminated — [f] must therefore guarantee that a sibling's failure
    cannot strand the others at a barrier (the engine's shard barrier
    carries a poison flag for exactly this). *)
val team : members:int -> (int -> 'a) -> 'a array option

(** {1 Supervised execution} *)

(** Final per-task verdict. [Timed_out] carries the seconds the last
    attempt had been running when it was given up on. *)
type 'b outcome = Done of 'b | Failed of Hscd_error.t | Timed_out of float

(** Retry / timeout / failure policy for one {!supervise} run. *)
type policy = {
  deadline : float option;
      (** seconds per task attempt; [None] = no timeout. Enforced only
          when running on spawned domains — the sequential fallback
          cannot interrupt a task. *)
  retries : int;  (** extra attempts after the first, per task *)
  backoff : float;
      (** seconds before re-queueing attempt [k] (scaled linearly by [k]) *)
  keep_going : bool;
      (** [true]: a task's final failure never stops siblings.
          [false]: after the first final failure, unstarted tasks are
          resolved as [Failed] (message ["cancelled"]); running tasks
          finish. *)
  max_respawns : int;
      (** replacement workers spawned for lost (hung) ones before the
          supervisor degrades to sequential in-caller execution *)
}

(** [deadline = None], [retries = 2], [backoff = 0.05],
    [keep_going = true], [max_respawns = 4]. *)
val default_policy : policy

(** What the supervisor had to do (for observability and tests). *)
type stats = {
  retried : int;  (** attempts re-queued after a crash or timeout *)
  timeouts : int;  (** attempts that blew their deadline *)
  respawns : int;  (** replacement workers spawned *)
  degraded : bool;  (** finished sequentially in the caller *)
}

(** [supervise ~jobs ~policy ~on_done f xs] runs every task under the
    supervision policy and returns one final {!outcome} per input, in
    input order, plus {!stats}. [on_done i outcome] fires in the
    supervising (calling) domain as each task resolves — in completion
    order, not input order — which is the checkpoint-journal hook: a
    crash after [on_done] loses nothing for that task. Timed-out and
    crashed attempts are retried up to [policy.retries] times; a retry
    that succeeds yields a normal [Done] (bit-identical to a fault-free
    run when [f] is pure). [jobs <= 1] executes sequentially in the
    caller (retries honoured, deadlines not). *)
val supervise :
  ?jobs:int ->
  ?policy:policy ->
  ?on_done:(int -> 'b outcome -> unit) ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list * stats

(** Test hook: make the next [n] [Domain.spawn] attempts inside the pool
    fail, to exercise degradation paths. *)
module For_testing : sig
  val fail_next_spawns : int Atomic.t
end
