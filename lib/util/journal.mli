(** Append-only, checksummed key/value journal — the persistence layer of
    checkpoint-resume for long sweeps. Each record carries its own
    checksum, so a process killed mid-write leaves a torn tail that is
    detected and dropped on the next open; every record that was fully
    appended before the crash survives.

    On-disk framing (ints are 8-byte little-endian, as in the HSCDTRC2
    trace format):

    {v
    magic "HSCDJNL1"
    record := key_len, key bytes, payload_len, payload bytes, checksum
    v}

    The checksum is an order-sensitive avalanche fold over the record's
    lengths and bytes: a flipped bit anywhere in a record invalidates it.
    Corrupt or torn records end the valid prefix — everything after them
    is discarded by {!open_append} (atomically, via rewrite + rename). *)

type t

(** Records of the valid prefix, in append order. [Ok []] when the file
    does not exist. [Error _] when it exists but is not a journal
    (foreign magic) or cannot be read. *)
val load : string -> ((string * string) list, Hscd_error.t) result

(** Open for appending, creating the file (with magic) if absent and
    truncating any torn/corrupt tail first. The returned handle carries
    the recovered records ({!entries}). *)
val open_append : string -> (t, Hscd_error.t) result

(** The records recovered when the handle was opened. *)
val entries : t -> (string * string) list

(** Append one record and flush+fsync it (durable once [append]
    returns). *)
val append : t -> key:string -> string -> unit

val close : t -> unit

(** [with_journal path f] opens, runs [f], and always closes. *)
val with_journal : string -> (t -> ('a, Hscd_error.t) result) -> ('a, Hscd_error.t) result
