(** Typed errors for the production paths (trace I/O, the compile cache,
    the experiment runner, the CLI). A value of {!t} says {e what class}
    of failure happened ({!kind}), {e where} (a context trail, innermost
    first), and carries the original message and, when available, the
    backtrace of the exception it was converted from.

    The error taxonomy decides policy mechanically:
    - {!transient} errors (I/O hiccups, worker crashes, task timeouts)
      are worth retrying — the supervised {!Pool} does so with backoff;
    - {!exit_code} maps a kind to the normalized [hscd] exit codes
      (0 ok, 1 result failure, 2 usage, 3 internal). *)

type kind =
  | Usage  (** bad user input: unknown benchmark, malformed flag *)
  | Parse  (** PFL source or text-trace syntax error *)
  | Io  (** OS-level file/channel failure *)
  | Corrupt  (** checksum/framing/validation failure in a stored artifact *)
  | Worker  (** a pool task raised *)
  | Timeout  (** a pool task exceeded its deadline *)
  | Check  (** a result-level failure: fuzz found bugs, schemes diverged *)
  | Internal  (** invariant breach — a bug in hscd itself *)
  | Busy
      (** admission control said "not now": a bounded queue was full or the
          service is draining — backpressure, retryable by design *)
  | Rejected
      (** admission control said "never": unknown tenant, over quota, or an
          invalid job — retrying the same request cannot succeed *)

type t = {
  kind : kind;
  message : string;
  context : string list;  (** innermost first, e.g. ["cell TRFD/TPI"; "sweep"] *)
  backtrace : string option;
}

val kind_name : kind -> string

(** Raised by the [*_exn] convenience wrappers at API boundaries that
    keep an exception-style signature. *)
exception Error of t

val make : ?context:string list -> ?backtrace:string -> kind -> string -> t

(** [fail kind fmt ...] raises {!Error}. *)
val fail : ?context:string list -> kind -> ('a, unit, string, 'b) format4 -> 'a

(** [error kind fmt ...] builds [Result.Error]. *)
val error : ?context:string list -> kind -> ('a, unit, string, ('b, t) result) format4 -> 'a

(** Push an enclosing context frame (outermost last). *)
val add_context : string -> t -> t

(** Classify an arbitrary exception. {!Error} payloads pass through
    untouched; [Failure]/[Sys_error]/parse-ish exceptions get mapped by
    content; anything else defaults to [default] (default [Internal]).
    Captures the current backtrace. *)
val of_exn : ?default:kind -> exn -> t

(** Run [f], converting any exception via {!of_exn}. *)
val guard : ?default:kind -> ?context:string -> (unit -> 'a) -> ('a, t) result

(** Re-raise an [Error e] result as {!Error}; identity on [Ok]. *)
val get_exn : ('a, t) result -> 'a

(** Is this error a plausible one-off worth retrying? ([Io], [Worker],
    [Timeout] and [Busy] are; corrupt artifacts, usage errors, logic
    errors and admission [Rejected]s are not.) *)
val transient : t -> bool

(** Normalized process exit code: [Usage] → 2, [Internal] → 3,
    [Busy] → 4, [Rejected] → 5, everything else → 1. *)
val exit_code : t -> int

(** One line: [kind: message (in context, in context)]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
