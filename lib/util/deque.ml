(* Ring buffer over an option array: [head] indexes the front element,
   [size] elements live at head, head+1, ... (mod capacity). *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;
  mutable size : int;
}

let create ?(capacity = 8) () = { buf = Array.make (max 1 capacity) None; head = 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.size - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_back t x =
  if t.size = Array.length t.buf then grow t;
  t.buf.((t.head + t.size) mod Array.length t.buf) <- Some x;
  t.size <- t.size + 1

let push_front t x =
  if t.size = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.head <- (t.head + cap - 1) mod cap;
  t.buf.(t.head) <- Some x;
  t.size <- t.size + 1

let pop_front t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.size <- t.size - 1;
    x
  end

let pop_back t =
  if t.size = 0 then None
  else begin
    let i = (t.head + t.size - 1) mod Array.length t.buf in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.size <- t.size - 1;
    x
  end

let peek_front t = if t.size = 0 then None else t.buf.(t.head)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.size <- 0

let to_list t =
  List.init t.size (fun i ->
      match t.buf.((t.head + i) mod Array.length t.buf) with
      | Some x -> x
      | None -> assert false)

let of_list xs =
  let t = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push_back t) xs;
  t
