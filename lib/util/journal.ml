let magic = "HSCDJNL1"

(* the same order-sensitive avalanche fold as the binary trace format *)
let mix h v =
  let h = (h lxor v) * 0x9E3779B1 in
  (h lxor (h lsr 27)) * 0x85EBCA77

let sum_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let record_sum ~key payload = sum_string (sum_string (mix (mix 0 (String.length key)) (String.length payload)) key) payload

type t = {
  oc : out_channel;
  scratch : Bytes.t;
  mutable recovered : (string * string) list;  (* reversed *)
  mutable closed : bool;
}

(* ---- recovery scan ---- *)

(* Reads the valid prefix of [path]: returns records (append order) and
   the byte offset where the valid prefix ends. A record that is
   truncated, has an implausible length, or fails its checksum ends the
   scan — it and everything after it are the torn tail. *)
let scan path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let len = in_channel_length ic in
  let m = Bytes.create (String.length magic) in
  (match really_input ic m 0 (Bytes.length m) with
  | () -> ()
  | exception End_of_file ->
    raise (Hscd_error.Error (Hscd_error.make Hscd_error.Corrupt (path ^ ": not a journal (short file)"))));
  if Bytes.to_string m <> magic then
    raise (Hscd_error.Error (Hscd_error.make Hscd_error.Corrupt (path ^ ": not a journal (bad magic)")));
  let scratch = Bytes.create 8 in
  let read_int () =
    really_input ic scratch 0 8;
    Int64.to_int (Bytes.get_int64_le scratch 0)
  in
  let read_str n =
    let b = Bytes.create n in
    really_input ic b 0 n;
    Bytes.unsafe_to_string b
  in
  let records = ref [] in
  let valid_end = ref (String.length magic) in
  (try
     let continue = ref true in
     while !continue do
       if pos_in ic >= len then continue := false
       else begin
         let key_len = read_int () in
         if key_len < 0 || key_len > len then raise Exit;
         let key = read_str key_len in
         let payload_len = read_int () in
         if payload_len < 0 || payload_len > len then raise Exit;
         let payload = read_str payload_len in
         let sum = read_int () in
         if sum <> record_sum ~key payload then raise Exit;
         records := (key, payload) :: !records;
         valid_end := pos_in ic
       end
     done
   with End_of_file | Exit -> ());
  (List.rev !records, !valid_end, len)

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    match scan path with
    | records, _, _ -> Ok records
    | exception Hscd_error.Error e -> Error e
    | exception exn -> Error (Hscd_error.of_exn ~default:Hscd_error.Io exn)

(* ---- appending ---- *)

let put_int oc scratch v =
  Bytes.set_int64_le scratch 0 (Int64.of_int v);
  output_bytes oc scratch

let append t ~key payload =
  if t.closed then Hscd_error.fail Hscd_error.Internal "Journal.append: closed handle";
  put_int t.oc t.scratch (String.length key);
  output_string t.oc key;
  put_int t.oc t.scratch (String.length payload);
  output_string t.oc payload;
  put_int t.oc t.scratch (record_sum ~key payload);
  flush t.oc;
  (* durable once append returns: a kill after this point loses nothing *)
  try Unix.fsync (Unix.descr_of_out_channel t.oc) with Unix.Unix_error _ | Sys_error _ -> ()

let entries t = List.rev t.recovered

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end

let open_append path =
  match
    if not (Sys.file_exists path) then begin
      let oc = open_out_bin path in
      (* close-on-error: a full disk (or any write failure) must not leak
         the descriptor — repeated failing opens would exhaust the fd
         budget long before anyone notices the real problem *)
      (try
         output_string oc magic;
         flush oc
       with exn ->
         close_out_noerr oc;
         raise exn);
      (oc, [])
    end
    else begin
      let records, valid_end, len = scan path in
      (* drop a torn tail atomically: rewrite the valid prefix and rename
         over the original, so a crash here still leaves a valid journal *)
      if valid_end < len then begin
        let prefix =
          let ic = open_in_bin path in
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
              really_input_string ic valid_end)
        in
        let tmp = path ^ ".tmp" in
        let oc = open_out_bin tmp in
        (try
           output_string oc prefix;
           close_out oc
         with exn ->
           close_out_noerr oc;
           raise exn);
        Sys.rename tmp path
      end;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      (oc, records)
    end
  with
  | oc, recovered ->
    Ok { oc; scratch = Bytes.create 8; recovered = List.rev recovered; closed = false }
  | exception Hscd_error.Error e -> Error e
  | exception exn -> Error (Hscd_error.of_exn ~default:Hscd_error.Io exn)

let with_journal path f =
  match open_append path with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
