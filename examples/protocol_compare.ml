(** Protocol comparison on a real benchmark model: runs OCEAN under all
    four schemes (plus LimitLESS) and prints a full report — execution
    time, miss decomposition, traffic and protocol activity.

    Run with: [dune exec examples/protocol_compare.exe] *)

module Run = Core.Sim.Run
module Metrics = Core.Sim.Metrics
module Scheme = Core.Coherence.Scheme
module Table = Hscd_util.Table

let () =
  let program = Core.Workloads.Perfect.(List.find (fun e -> e.name = "OCEAN") all).build () in
  let schemes = Run.[ Base; SC; TPI; HW; LimitLESS ] in
  let compiled, results = Run.compare ~schemes program in
  Printf.printf "OCEAN model: %d epochs, %d memory events\n\n"
    (Core.Sim.Trace.packed_n_epochs compiled.packed_trace)
    compiled.packed_trace.Core.Sim.Trace.p_total_events;

  let t =
    Table.create ~title:"OCEAN under five coherence schemes"
      ~header:
        [ "scheme"; "cycles"; "vs HW"; "miss rate"; "avg miss lat"; "invalidations";
          "recalls"; "traffic (words)" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      ()
  in
  let hw_cycles =
    (List.find (fun (r : Run.comparison) -> r.kind = Run.HW) results).result.cycles
  in
  List.iter
    (fun (r : Run.comparison) ->
      let m = r.result.metrics in
      assert (r.result.memory_ok && m.violations = 0);
      Table.add_row t
        [
          Run.scheme_name r.kind;
          Table.fi r.result.cycles;
          Table.ff2 (float_of_int r.result.cycles /. float_of_int hw_cycles);
          Table.fpct (Metrics.miss_rate m);
          Table.ff1 (Metrics.avg_read_miss_latency m);
          Table.fi m.scheme_stats.invalidations_sent;
          Table.fi m.scheme_stats.dirty_recalls;
          Table.fi (m.traffic.reads + m.traffic.writes + m.traffic.coherence);
        ])
    results;
  Table.print t;

  (* decomposition of the unnecessary misses, the paper's key comparison *)
  let t2 =
    Table.create ~title:"Unnecessary misses: conservative (compiler) vs false sharing (hardware)"
      ~header:[ "scheme"; "conservative"; "false sharing"; "true sharing"; "cold+repl" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun (r : Run.comparison) ->
      let m = r.result.metrics in
      Table.add_row t2
        [
          Run.scheme_name r.kind;
          Table.fi (Metrics.class_count m Scheme.Conservative);
          Table.fi (Metrics.class_count m Scheme.False_sharing);
          Table.fi (Metrics.class_count m Scheme.True_sharing);
          Table.fi (Metrics.class_count m Scheme.Cold + Metrics.class_count m Scheme.Replacement);
        ])
    results;
  Table.print t2
